//! The B-tree-organized storage method.
//!
//! "The records of the relation … may be stored in the leaves of a B-tree
//! index." Record keys are "composed from some subset of the fields of
//! the records" — declared in the DDL attribute list (`key = f1, f2`).
//! Updates that change key fields relocate the record, yielding a new
//! record key (the dispatcher tells attachments about both keys).

use std::ops::Bound;
use std::sync::Arc;

use dmx_btree::{BTree, OnDuplicate};
use dmx_core::{
    project_values, AccessPath, AccessQuery, CommonServices, Cost, ExecCtx, KeyRange, PathChoice,
    RelationDescriptor, ScanItem, ScanOps, StorageMethod,
};
use dmx_expr::{analyze, CmpOp, Expr, SargOp};
use dmx_lock::{LockMode, LockName};
use dmx_types::{
    key::encode_values, AttrList, DmxError, FieldId, FileId, Lsn, PageId, Record, RecordKey,
    RelationId, Result, Schema, Value,
};
use dmx_wal::ExtKind;

use crate::ops::{
    decode_key, decode_old_new, encode_key_old_new, encode_key_record, OP_DELETE, OP_INSERT,
    OP_UPDATE,
};
use crate::util::{decode_position, encode_position, filter_project};

/// The B-tree storage method singleton.
pub struct BTreeStorage;

/// Descriptor: file (u32) + root page_no (u32) + key field count (u16) +
/// field ids.
#[derive(Debug, Clone, PartialEq)]
pub struct BtDesc {
    pub file: FileId,
    pub root_page: u32,
    pub key_fields: Vec<FieldId>,
}

impl BtDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(10 + self.key_fields.len() * 2);
        v.extend_from_slice(&self.file.0.to_le_bytes());
        v.extend_from_slice(&self.root_page.to_le_bytes());
        v.extend_from_slice(&(self.key_fields.len() as u16).to_le_bytes());
        for f in &self.key_fields {
            v.extend_from_slice(&f.to_le_bytes());
        }
        v
    }

    pub fn decode(desc: &[u8]) -> Result<BtDesc> {
        use dmx_types::bytes::{le_u16, le_u32};
        let corrupt = || DmxError::Corrupt("short btree-sm descriptor".into());
        let file = FileId(le_u32(desc, 0).ok_or_else(corrupt)?);
        let root_page = le_u32(desc, 4).ok_or_else(corrupt)?;
        let n = le_u16(desc, 8).ok_or_else(corrupt)? as usize;
        let mut key_fields = Vec::with_capacity(n);
        for i in 0..n {
            key_fields.push(le_u16(desc, 10 + i * 2).ok_or_else(corrupt)?);
        }
        Ok(BtDesc {
            file,
            root_page,
            key_fields,
        })
    }
}

impl BTreeStorage {
    fn desc(rd: &RelationDescriptor) -> Result<BtDesc> {
        BtDesc::decode(&rd.sm_desc)
    }

    fn tree(services: &Arc<CommonServices>, d: &BtDesc) -> BTree {
        BTree::open(
            &services.pool,
            PageId::new(d.file, d.root_page),
            &services.latches,
        )
    }

    fn record_key(d: &BtDesc, record: &Record) -> Result<RecordKey> {
        let mut vals = Vec::with_capacity(d.key_fields.len());
        for &f in &d.key_fields {
            let v = record
                .values
                .get(f as usize)
                .ok_or_else(|| DmxError::InvalidArg(format!("no key field {f}")))?;
            if v.is_null() {
                return Err(DmxError::InvalidArg(
                    "B-tree storage key fields may not be NULL".into(),
                ));
            }
            vals.push(v.clone());
        }
        Ok(RecordKey::new(encode_values(&vals)))
    }

    fn parse_key_fields(params: &AttrList, schema: &Schema) -> Result<Vec<FieldId>> {
        let spec = params.require("key", "btree storage")?;
        let mut fields = Vec::new();
        for name in spec.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            let id = schema.field_id(name)?;
            if fields.contains(&id) {
                return Err(DmxError::InvalidArg(format!("duplicate key field {name}")));
            }
            fields.push(id);
        }
        if fields.is_empty() {
            return Err(DmxError::InvalidArg("empty key field list".into()));
        }
        Ok(fields)
    }

    fn log(ctx: &ExecCtx<'_>, rd: &RelationDescriptor, op: u8, payload: Vec<u8>) -> Lsn {
        ctx.log_ext_op(ExtKind::Storage(rd.sm), rd.id, op, payload)
    }

    /// X-locks the gap a write at `key` splits (insert) or merges
    /// (delete): the gap is named by the key's in-tree successor, with
    /// an EOF sentinel past the last key. Conflicts with the S gap
    /// locks a locking range scan leaves across the intervals it read,
    /// fencing phantoms; snapshot readers take no gap locks and are
    /// never blocked by this.
    fn lock_successor_gap(
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        d: &BtDesc,
        tree: &BTree,
        key: &[u8],
    ) -> Result<()> {
        let succ = tree.seek(Bound::Excluded(key))?.map(|(k, _)| k);
        ctx.lock(LockName::gap(rd.id, d.file, succ.as_deref()), LockMode::X)
    }
}

impl StorageMethod for BTreeStorage {
    fn name(&self) -> &str {
        "btree"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        params.check_allowed(&["key"], "btree storage")?;
        Self::parse_key_fields(params, schema).map(|_| ())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        _rel: RelationId,
        schema: &Schema,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let key_fields = Self::parse_key_fields(params, schema)?;
        let services = ctx.services();
        let file = services.disk.create_file()?;
        let tree = BTree::create(&services.pool, file, &services.latches)?;
        Ok(BtDesc {
            file,
            root_page: tree.root().page_no,
            key_fields,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, sm_desc: &[u8]) -> Result<()> {
        let d = BtDesc::decode(sm_desc)?;
        services.latches.forget(PageId::new(d.file, d.root_page));
        services.pool.discard_file(d.file);
        services.disk.delete_file(d.file)
    }

    fn storage_files(&self, sm_desc: &[u8]) -> Vec<dmx_types::FileId> {
        BtDesc::decode(sm_desc)
            .map(|d| vec![d.file])
            .unwrap_or_default()
    }

    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey> {
        let d = Self::desc(rd)?;
        let key = Self::record_key(&d, record)?;
        let tree = Self::tree(ctx.services(), &d);
        // Pre-check the duplicate so the log record is written only for
        // operations that will apply (a logged-but-failed insert would
        // make rollback delete the pre-existing record), while keeping
        // the write-ahead order: the log record exists before the tree
        // pages are dirtied, so any flush of those pages forces it first.
        if tree.get(key.as_bytes())?.is_some() {
            return Err(DmxError::Duplicate(format!(
                "btree storage key {key:?} already exists"
            )));
        }
        // Record before gap: the per-key acquisition order shared with
        // locking scans (record S, then gap S), so a writer and a scan
        // meeting on one key cannot deadlock across the pair. The DML
        // layer re-locks the key after this call returns; that is a
        // re-grant.
        ctx.lock_record(rd.id, &key, LockMode::X)?;
        Self::lock_successor_gap(ctx, rd, &d, &tree, key.as_bytes())?;
        let bytes = record.encode();
        let lsn = Self::log(
            ctx,
            rd,
            OP_INSERT,
            encode_key_record(key.as_bytes(), &bytes),
        );
        tree.with_wal_lsn(lsn)
            .insert(key.as_bytes(), &bytes, OnDuplicate::Replace)?;
        Ok(key)
    }

    fn update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        new: &Record,
    ) -> Result<(Record, RecordKey)> {
        let d = Self::desc(rd)?;
        let tree = Self::tree(ctx.services(), &d);
        let old_bytes = tree
            .get(key.as_bytes())?
            .ok_or_else(|| DmxError::NotFound(format!("btree record {key:?}")))?;
        let old = Record::decode(&old_bytes)?;
        let new_key = Self::record_key(&d, new)?;
        let new_bytes = new.encode();
        if new_key == *key {
            let lsn = Self::log(
                ctx,
                rd,
                OP_UPDATE,
                encode_key_old_new(key.as_bytes(), &old_bytes, &new_bytes),
            );
            tree.with_wal_lsn(lsn)
                .insert(key.as_bytes(), &new_bytes, OnDuplicate::Replace)?;
            return Ok((old, new_key));
        }
        // Key fields changed: the record moves ("the old record and record
        // key will be used to determine which key to delete … and the new
        // record and record key … inserted").
        if tree.get(new_key.as_bytes())?.is_some() {
            return Err(DmxError::Duplicate(format!(
                "btree storage key {new_key:?} already exists"
            )));
        }
        // The relocation deletes the old key (merging its gap into its
        // successor's) and inserts the new one (splitting a gap).
        // Record-before-gap order: X the destination key ahead of every
        // gap acquisition (the old key's record X is already held by the
        // DML layer); the DML layer's post-return lock is a re-grant.
        ctx.lock_record(rd.id, &new_key, LockMode::X)?;
        ctx.lock(
            LockName::gap(rd.id, d.file, Some(key.as_bytes())),
            LockMode::X,
        )?;
        Self::lock_successor_gap(ctx, rd, &d, &tree, key.as_bytes())?;
        Self::lock_successor_gap(ctx, rd, &d, &tree, new_key.as_bytes())?;
        let lsn = Self::log(
            ctx,
            rd,
            OP_DELETE,
            encode_key_record(key.as_bytes(), &old_bytes),
        );
        let tree = tree.with_wal_lsn(lsn);
        tree.delete(key.as_bytes())?;
        let lsn = Self::log(
            ctx,
            rd,
            OP_INSERT,
            encode_key_record(new_key.as_bytes(), &new_bytes),
        );
        tree.with_wal_lsn(lsn)
            .insert(new_key.as_bytes(), &new_bytes, OnDuplicate::Replace)?;
        Ok((old, new_key))
    }

    fn delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
    ) -> Result<Record> {
        let d = Self::desc(rd)?;
        let tree = Self::tree(ctx.services(), &d);
        let old_bytes = tree
            .get(key.as_bytes())?
            .ok_or_else(|| DmxError::NotFound(format!("btree record {key:?}")))?;
        // Deleting merges the gap named by `key` into its successor's:
        // X both names so range scans spanning either interval conflict.
        ctx.lock(
            LockName::gap(rd.id, d.file, Some(key.as_bytes())),
            LockMode::X,
        )?;
        Self::lock_successor_gap(ctx, rd, &d, &tree, key.as_bytes())?;
        let lsn = Self::log(
            ctx,
            rd,
            OP_DELETE,
            encode_key_record(key.as_bytes(), &old_bytes),
        );
        tree.with_wal_lsn(lsn).delete(key.as_bytes())?;
        Record::decode(&old_bytes)
    }

    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let d = Self::desc(rd)?;
        let tree = Self::tree(ctx.services(), &d);
        let Some(bytes) = tree.get(key.as_bytes())? else {
            return Ok(None);
        };
        filter_project(ctx, &bytes, fields, pred)
    }

    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        let d = Self::desc(rd)?;
        let tree = Self::tree(ctx.services(), &d);
        Ok(Box::new(BtScan {
            tree,
            rel: rd.id,
            file: d.file,
            lo: range.lo,
            hi: range.hi,
            pred,
            fields,
            after: None,
            range_lock: false,
            end_gap_locked: false,
        }))
    }

    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        let d = match Self::desc(rd) {
            Ok(d) => d,
            Err(_) => return PathChoice::full_scan(AccessPath::StorageMethod, 1, 0),
        };
        let pages = rd.stats.pages().max(rd.stats.records() / 40 + 1);
        let records = rd.stats.records();
        let ts = rd.stats.table_stats();
        let sel: f64 = preds
            .iter()
            .map(|p| dmx_expr::selectivity(p, ts.as_deref()))
            .product();
        // Recognize a sargable constraint on the leading key field: the
        // tree then serves a range rather than a full scan.
        let sargs = preds
            .iter()
            .filter_map(analyze::sargable)
            .filter(|s| s.field == d.key_fields[0])
            .collect::<Vec<_>>();
        let mut choice = PathChoice::full_scan(AccessPath::StorageMethod, pages, records);
        choice.applied = preds.to_vec();
        choice.rows_out = records as f64 * sel;
        choice.ordering = Some(d.key_fields.clone());
        if let Some(s) = sargs.first() {
            let height = (records.max(2) as f64).log2() / 7.0 + 1.0; // ~fan-out 128
                                                                     // Key-range fraction: maintained statistics when published,
                                                                     // structural guesses (unique probe / one-third) otherwise.
            let stat_frac = dmx_expr::sarg_fraction(s.field, &s.op, ts.as_deref());
            let (frac, query) = match &s.op {
                SargOp::Eq(v) => (
                    stat_frac.unwrap_or(1.0 / records.max(1) as f64),
                    AccessQuery::Range(eq_prefix_range(v)),
                ),
                SargOp::Range(op, v) => {
                    let r = range_for(*op, v);
                    (stat_frac.unwrap_or(1.0 / 3.0), AccessQuery::Range(r))
                }
                _ => (1.0, AccessQuery::All),
            };
            let leaf_pages = (pages as f64 * frac).ceil();
            choice.query = query;
            choice.cost = Cost::new(height + leaf_pages, records as f64 * frac);
            // overall output is bounded by both the key-range fraction and
            // the residual predicate selectivity
            choice.rows_out = records as f64 * sel.min(frac);
        }
        choice
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let d = Self::desc(rd)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        let (key, rest) = decode_key(payload)?;
        match op {
            // Logical undo with presence checks (idempotent).
            OP_INSERT => {
                tree.delete(key)?;
            }
            OP_DELETE => {
                tree.insert(key, rest, OnDuplicate::Replace)?;
            }
            OP_UPDATE => {
                let (old, _) = decode_old_new(rest)?;
                tree.insert(key, old, OnDuplicate::Replace)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad btree-sm op {other}"))),
        }
        Ok(())
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let d = Self::desc(rd)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        let (key, rest) = decode_key(payload)?;
        // Logical redo: the on-disk tree is the last checkpoint's
        // (no-steal) consistent image, and replace/absent-tolerant ops
        // make replay idempotent.
        match op {
            OP_INSERT => {
                tree.insert(key, rest, OnDuplicate::Replace)?;
            }
            OP_DELETE => {
                tree.delete(key)?;
            }
            OP_UPDATE => {
                let (_, new) = decode_old_new(rest)?;
                tree.insert(key, new, OnDuplicate::Replace)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad btree-sm op {other}"))),
        }
        Ok(())
    }

    fn scan_ordering(&self, rd: &RelationDescriptor) -> Option<Vec<FieldId>> {
        Self::desc(rd).ok().map(|d| d.key_fields)
    }
}

/// Builds the key range `[enc(v), enc(v) + 0xFF…)` matching all composite
/// keys whose leading field equals `v`.
fn eq_prefix_range(v: &Value) -> KeyRange {
    let lo = encode_values(std::slice::from_ref(v));
    let mut hi = lo.clone();
    hi.push(0xFF);
    KeyRange {
        lo: Bound::Included(lo),
        hi: Bound::Excluded(hi),
    }
}

fn range_for(op: CmpOp, v: &Value) -> KeyRange {
    let enc = encode_values(std::slice::from_ref(v));
    let mut after = enc.clone();
    after.push(0xFF);
    match op {
        CmpOp::Lt => KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Excluded(enc),
        },
        CmpOp::Le => KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Excluded(after),
        },
        CmpOp::Gt => KeyRange {
            lo: Bound::Included(after),
            hi: Bound::Unbounded,
        },
        CmpOp::Ge => KeyRange {
            lo: Bound::Included(enc),
            hi: Bound::Unbounded,
        },
        CmpOp::Eq | CmpOp::Ne => KeyRange::all(),
    }
}

struct BtScan {
    tree: BTree,
    rel: RelationId,
    file: FileId,
    lo: Bound<Vec<u8>>,
    hi: Bound<Vec<u8>>,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    after: Option<Vec<u8>>,
    /// When set (locking-scan dispatch only), S-lock the gap below each
    /// key the scan passes so concurrent inserts into the scanned range
    /// conflict (phantom fencing). Raw internal scans leave it off.
    range_lock: bool,
    /// The boundary gap past the last in-range key is locked once.
    end_gap_locked: bool,
}

impl ScanOps for BtScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        loop {
            let bound = match &self.after {
                Some(k) => Bound::Excluded(k.as_slice()),
                None => match &self.lo {
                    Bound::Included(b) => Bound::Included(b.as_slice()),
                    Bound::Excluded(b) => Bound::Excluded(b.as_slice()),
                    Bound::Unbounded => Bound::Unbounded,
                },
            };
            let Some((key, bytes)) = self.tree.seek(bound)? else {
                if self.range_lock && !self.end_gap_locked {
                    self.end_gap_locked = true;
                    // EOF: the gap from the last key to end-of-tree.
                    ctx.lock(LockName::gap(self.rel, self.file, None), LockMode::S)?;
                }
                return Ok(None);
            };
            let in_hi = match &self.hi {
                Bound::Unbounded => true,
                Bound::Included(h) => key <= *h,
                Bound::Excluded(h) => key < *h,
            };
            if !in_hi {
                if self.range_lock && !self.end_gap_locked {
                    self.end_gap_locked = true;
                    // The gap between the last in-range key and the
                    // first key beyond the range boundary. Record before
                    // gap, matching the writers' per-key order (a delete
                    // of the boundary key holds its record X while
                    // asking for this gap).
                    ctx.lock_record(self.rel, &RecordKey::new(key.clone()), LockMode::S)?;
                    ctx.lock(LockName::gap(self.rel, self.file, Some(&key)), LockMode::S)?;
                }
                return Ok(None);
            }
            if self.range_lock {
                // The gap below this key (even when the predicate then
                // filters it): an insert landing there is a phantom.
                // Record S first: writers take record X then gap X on
                // the same key, and a shared per-key order keeps a scan
                // and a delete from deadlocking across the pair. The
                // LockingScan wrapper's later record S is a re-grant.
                ctx.lock_record(self.rel, &RecordKey::new(key.clone()), LockMode::S)?;
                ctx.lock(LockName::gap(self.rel, self.file, Some(&key)), LockMode::S)?;
            }
            self.after = Some(key.clone());
            if let Some(values) =
                filter_project(ctx, &bytes, self.fields.as_deref(), self.pred.as_ref())?
            {
                return Ok(Some(ScanItem {
                    key: RecordKey::new(key),
                    values: Some(values),
                }));
            }
        }
    }

    fn supports_versioned_read(&self) -> bool {
        true
    }

    fn item_from_version(
        &self,
        ctx: &ExecCtx<'_>,
        key: &RecordKey,
        values: &[Value],
    ) -> Result<Option<ScanItem>> {
        // Version-sourced items (the snapshot delta sweep in particular)
        // are not pre-filtered by the tree traversal: re-check bounds.
        let kb = key.as_bytes();
        let in_lo = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => kb >= b.as_slice(),
            Bound::Excluded(b) => kb > b.as_slice(),
        };
        let in_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => kb <= b.as_slice(),
            Bound::Excluded(b) => kb < b.as_slice(),
        };
        if !in_lo || !in_hi {
            return Ok(None);
        }
        if let Some(p) = &self.pred {
            if !ctx.eval_predicate(p, &values)? {
                return Ok(None);
            }
        }
        Ok(Some(ScanItem {
            key: key.clone(),
            values: Some(project_values(values, self.fields.as_deref())?),
        }))
    }

    fn set_range_locking(&mut self, on: bool) {
        self.range_lock = on;
    }

    fn save_position(&self) -> Vec<u8> {
        encode_position(self.after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = decode_position(pos)?;
        self.end_gap_locked = false;
        Ok(())
    }
}
