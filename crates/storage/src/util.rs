//! Shared helpers: projection + buffer-resident filtering.

use dmx_core::ExecCtx;
use dmx_expr::Expr;
use dmx_types::{FieldId, RecordRef, Result, Value};

/// Applies the filter predicate to an encoded record *in place* (no
/// copy-out) and, when it passes, decodes the requested projection
/// (`None` = all fields). Returns `None` when the record fails the
/// filter.
pub fn filter_project(
    ctx: &ExecCtx<'_>,
    record_bytes: &[u8],
    fields: Option<&[FieldId]>,
    pred: Option<&Expr>,
) -> Result<Option<Vec<Value>>> {
    let rr = RecordRef::new(record_bytes)?;
    if let Some(p) = pred {
        if !ctx.eval_predicate(p, &rr)? {
            return Ok(None);
        }
    }
    let values = match fields {
        Some(ids) => rr.fields(ids)?,
        None => rr.to_record()?.values,
    };
    Ok(Some(values))
}

/// Serializes a scan position: `[0]` = at start, `[1] ++ key` = after
/// `key`.
pub fn encode_position(after: Option<&[u8]>) -> Vec<u8> {
    match after {
        None => vec![0],
        Some(k) => {
            let mut v = Vec::with_capacity(1 + k.len());
            v.push(1);
            v.extend_from_slice(k);
            v
        }
    }
}

/// Parses a position written by [`encode_position`].
pub fn decode_position(pos: &[u8]) -> Result<Option<Vec<u8>>> {
    match pos.split_first() {
        Some((0, _)) => Ok(None),
        Some((1, rest)) => Ok(Some(rest.to_vec())),
        _ => Err(dmx_types::DmxError::Corrupt("bad scan position".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_roundtrip() {
        assert_eq!(decode_position(&encode_position(None)).unwrap(), None);
        assert_eq!(
            decode_position(&encode_position(Some(b"abc"))).unwrap(),
            Some(b"abc".to_vec())
        );
        assert!(decode_position(&[]).is_err());
        assert!(decode_position(&[7]).is_err());
    }
}
