//! Integration tests: every built-in storage method driven through the
//! core dispatcher (the paper's two-step modification protocol), plus
//! rollback, savepoints, veto via a test attachment, and crash restart.

// Integration-test harnesses are exempt from the runtime panic
// discipline: a broken fixture should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dmx_core::{
    AccessPath, AccessQuery, Attachment, AttachmentInstance, CommonServices, Database,
    DatabaseConfig, DatabaseEnv, ExecCtx, ExtensionRegistry, RelationDescriptor,
};
use dmx_expr::{CmpOp, Expr};
use dmx_storage::register_builtin_storage;
use dmx_types::{
    AttrList, ColumnDef, DataType, DmxError, Lsn, Record, RecordKey, RelationId, Result, Schema,
    Value,
};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::not_null("name", DataType::Str),
        ColumnDef::new("salary", DataType::Float),
    ])
    .unwrap()
}

fn rec(id: i64, name: &str, salary: f64) -> Record {
    Record::new(vec![
        Value::Int(id),
        Value::from(name),
        Value::Float(salary),
    ])
}

fn registry() -> Arc<ExtensionRegistry> {
    let reg = ExtensionRegistry::new();
    register_builtin_storage(&reg).unwrap();
    reg
}

fn open_db() -> Arc<Database> {
    Database::open_fresh(registry()).unwrap()
}

fn params(sm: &str) -> AttrList {
    match sm {
        "btree" => AttrList::parse("key=id").unwrap(),
        "foreign" => AttrList::parse("server=mars").unwrap(),
        _ => AttrList::new(),
    }
}

fn make_rel(db: &Arc<Database>, sm: &str, name: &str) -> RelationId {
    db.with_txn(|txn| db.create_relation(txn, name, schema(), sm, &params(sm)))
        .unwrap()
}

/// Drives the full CRUD + scan lifecycle through the dispatcher.
fn crud_roundtrip(sm: &str) {
    let db = if sm == "foreign" {
        open_db_with_mars()
    } else {
        open_db()
    };
    let rel = make_rel(&db, sm, "t");

    // insert + fetch
    let keys: Vec<RecordKey> = db
        .with_txn(|txn| {
            (0..50)
                .map(|i| db.insert(txn, rel, rec(i, &format!("u{i}"), i as f64 * 10.0)))
                .collect()
        })
        .unwrap();
    db.with_txn(|txn| {
        let row = db.fetch(txn, rel, &keys[7], None, None)?.unwrap();
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[1], Value::from("u7"));
        // projection + in-storage filtering
        let got = db.fetch(txn, rel, &keys[7], Some(&[1]), Some(&Expr::col_eq(0, 7i64)))?;
        assert_eq!(got.unwrap(), vec![Value::from("u7")]);
        let filtered = db.fetch(txn, rel, &keys[7], None, Some(&Expr::col_eq(0, 8i64)))?;
        assert_eq!(filtered, None, "predicate rejects in place");
        Ok(())
    })
    .unwrap();

    // scan with pushdown predicate
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            Some(Expr::cmp_col(CmpOp::Lt, 0, 10i64)),
            Some(vec![0]),
        )?;
        let mut seen = Vec::new();
        while let Some(item) = db.scan_next(txn, scan)? {
            seen.push(item.values.unwrap()[0].as_int()?);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        Ok(())
    })
    .unwrap();

    assert_eq!(db.catalog().get(rel).unwrap().stats.records(), 50);

    if sm == "readonly" {
        // write-once: update/delete are refused
        db.with_txn(|txn| {
            assert!(matches!(
                db.update(txn, rel, &keys[0], rec(0, "x", 0.0)),
                Err(DmxError::Unsupported(_))
            ));
            assert!(matches!(
                db.delete(txn, rel, &keys[0]),
                Err(DmxError::Unsupported(_))
            ));
            Ok(())
        })
        .unwrap();
        return;
    }

    // update (non-key fields) + delete
    db.with_txn(|txn| {
        let nk = db.update(txn, rel, &keys[3], rec(3, "updated", 99.0))?;
        let row = db.fetch(txn, rel, &nk, None, None)?.unwrap();
        assert_eq!(row[1], Value::from("updated"));
        db.delete(txn, rel, &keys[4])?;
        assert_eq!(db.fetch(txn, rel, &keys[4], None, None)?, None);
        assert!(matches!(
            db.delete(txn, rel, &keys[4]),
            Err(DmxError::NotFound(_))
        ));
        Ok(())
    })
    .unwrap();
    assert_eq!(db.catalog().get(rel).unwrap().stats.records(), 49);
}

fn open_db_with_mars() -> Arc<Database> {
    let reg = ExtensionRegistry::new();
    let foreign = Arc::new(dmx_storage::ForeignStorage::default());
    foreign.register_server("mars");
    reg.register_storage_method(Arc::new(dmx_storage::MemoryStorage::default()))
        .unwrap();
    reg.register_storage_method(Arc::new(dmx_storage::HeapStorage))
        .unwrap();
    reg.register_storage_method(Arc::new(dmx_storage::BTreeStorage))
        .unwrap();
    reg.register_storage_method(Arc::new(dmx_storage::ReadOnlyStorage))
        .unwrap();
    reg.register_storage_method(foreign).unwrap();
    Database::open_fresh(reg).unwrap()
}

#[test]
fn heap_crud() {
    crud_roundtrip("heap");
}

#[test]
fn btree_sm_crud() {
    crud_roundtrip("btree");
}

#[test]
fn memory_crud() {
    crud_roundtrip("memory");
}

#[test]
fn readonly_is_write_once() {
    crud_roundtrip("readonly");
}

#[test]
fn foreign_crud() {
    crud_roundtrip("foreign");
}

#[test]
fn foreign_undo_is_by_compensating_remote_operations() {
    // abort after remote inserts: the remote table ends up empty again
    let db = open_db_with_mars();
    let rel = make_rel(&db, "foreign", "remote");
    let txn = db.begin();
    db.insert(&txn, rel, rec(1, "x", 1.0)).unwrap();
    db.insert(&txn, rel, rec(2, "y", 2.0)).unwrap();
    db.abort(&txn).unwrap();
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )?;
        assert!(db.scan_next(txn, scan)?.is_none(), "compensated away");
        Ok(())
    })
    .unwrap();
}

#[test]
fn memory_storage_method_has_paper_id_1() {
    let db = open_db();
    assert_eq!(
        db.registry().storage_id_by_name("memory").unwrap(),
        dmx_types::SmTypeId(1),
        "the base temporary storage method is assigned internal identifier 1"
    );
}

#[test]
fn abort_rolls_back_all_storage_methods() {
    for sm in ["heap", "btree", "memory"] {
        let db = open_db();
        let rel = make_rel(&db, sm, "t");
        let keys = db
            .with_txn(|txn| {
                (0..10)
                    .map(|i| db.insert(txn, rel, rec(i, "keep", 1.0)))
                    .collect::<Result<Vec<_>>>()
            })
            .unwrap();
        // Uncommitted work: one update, one delete, three inserts → abort.
        let txn = db.begin();
        db.update(&txn, rel, &keys[0], rec(0, "dirty", 2.0))
            .unwrap();
        db.delete(&txn, rel, &keys[1]).unwrap();
        for i in 100..103 {
            db.insert(&txn, rel, rec(i, "phantom", 0.0)).unwrap();
        }
        db.abort(&txn).unwrap();

        db.with_txn(|txn| {
            let row = db.fetch(txn, rel, &keys[0], None, None)?.unwrap();
            assert_eq!(row[1], Value::from("keep"), "{sm}: update undone");
            assert!(
                db.fetch(txn, rel, &keys[1], None, None)?.is_some(),
                "{sm}: delete undone"
            );
            let scan = db.open_scan(
                txn,
                rel,
                AccessPath::StorageMethod,
                AccessQuery::All,
                None,
                None,
            )?;
            let mut n = 0;
            while db.scan_next(txn, scan)?.is_some() {
                n += 1;
            }
            assert_eq!(n, 10, "{sm}: inserts undone");
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn savepoint_partial_rollback_mid_transaction() {
    let db = open_db();
    let rel = make_rel(&db, "heap", "t");
    let txn = db.begin();
    let k1 = db.insert(&txn, rel, rec(1, "before", 1.0)).unwrap();
    db.savepoint(&txn, "sp").unwrap();
    let k2 = db.insert(&txn, rel, rec(2, "after", 2.0)).unwrap();
    db.update(&txn, rel, &k1, rec(1, "mutated", 9.0)).unwrap();
    db.rollback_to_savepoint(&txn, "sp").unwrap();
    // pre-savepoint state restored, transaction still usable
    let row = db.fetch(&txn, rel, &k1, None, None).unwrap().unwrap();
    assert_eq!(row[1], Value::from("before"));
    assert_eq!(db.fetch(&txn, rel, &k2, None, None).unwrap(), None);
    let k3 = db.insert(&txn, rel, rec(3, "post", 3.0)).unwrap();
    db.commit(&txn).unwrap();
    db.with_txn(|t| {
        assert!(db.fetch(t, rel, &k3, None, None)?.is_some());
        assert!(db.fetch(t, rel, &k2, None, None)?.is_none());
        Ok(())
    })
    .unwrap();
}

#[test]
fn crash_restart_preserves_committed_loses_uncommitted() {
    let env = DatabaseEnv::fresh();
    let reg = registry();
    let (rel, committed_key) = {
        let db = Database::open(env.clone(), DatabaseConfig::default(), reg.clone()).unwrap();
        let rel = db
            .with_txn(|txn| db.create_relation(txn, "t", schema(), "heap", &AttrList::new()))
            .unwrap();
        let k = db
            .with_txn(|txn| db.insert(txn, rel, rec(1, "durable", 1.0)))
            .unwrap();
        // uncommitted work lost in the crash
        let txn = db.begin();
        db.insert(&txn, rel, rec(2, "volatile", 2.0)).unwrap();
        (rel, k)
        // db dropped here WITHOUT commit/abort of `txn` → crash
    };
    let db = Database::open(env, DatabaseConfig::default(), reg).unwrap();
    db.with_txn(|txn| {
        let row = db.fetch(txn, rel, &committed_key, None, None)?.unwrap();
        assert_eq!(row[1], Value::from("durable"));
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )?;
        let mut n = 0;
        while db.scan_next(txn, scan)?.is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "only the committed record survives");
        Ok(())
    })
    .unwrap();
}

#[test]
fn temporary_relations_do_not_survive_restart() {
    let env = DatabaseEnv::fresh();
    let reg = registry();
    {
        let db = Database::open(env.clone(), DatabaseConfig::default(), reg.clone()).unwrap();
        db.with_txn(|txn| db.create_relation(txn, "tmp", schema(), "memory", &AttrList::new()))
            .unwrap();
        assert!(db.catalog().get_by_name("tmp").is_ok());
    }
    let db = Database::open(env, DatabaseConfig::default(), reg).unwrap();
    assert!(
        db.catalog().get_by_name("tmp").is_err(),
        "temporary relations vanish at restart"
    );
}

#[test]
fn drop_relation_is_deferred_and_undoable() {
    let db = open_db();
    let rel = make_rel(&db, "heap", "t");
    db.with_txn(|txn| db.insert(txn, rel, rec(1, "x", 1.0)))
        .unwrap();
    // Drop then abort: the relation reappears with its data.
    let txn = db.begin();
    db.drop_relation(&txn, "t").unwrap();
    assert!(db.catalog().get_by_name("t").is_err(), "immediately hidden");
    db.abort(&txn).unwrap();
    assert!(db.catalog().get_by_name("t").is_ok(), "abort restores it");
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )?;
        assert!(db.scan_next(txn, scan)?.is_some(), "data intact");
        Ok(())
    })
    .unwrap();
    // Drop and commit: storage is physically released.
    db.with_txn(|txn| db.drop_relation(txn, "t")).unwrap();
    assert!(db.catalog().get_by_name("t").is_err());
}

#[test]
fn btree_sm_key_change_relocates_record() {
    let db = open_db();
    let rel = make_rel(&db, "btree", "t");
    let k = db
        .with_txn(|txn| db.insert(txn, rel, rec(5, "five", 5.0)))
        .unwrap();
    db.with_txn(|txn| {
        let nk = db.update(txn, rel, &k, rec(50, "fifty", 5.0))?;
        assert_ne!(nk, k, "key fields changed → new record key");
        assert!(db.fetch(txn, rel, &k, None, None)?.is_none());
        assert_eq!(
            db.fetch(txn, rel, &nk, None, None)?.unwrap()[0],
            Value::Int(50)
        );
        Ok(())
    })
    .unwrap();
}

#[test]
fn btree_sm_enforces_key_uniqueness_and_scan_order() {
    let db = open_db();
    let rel = make_rel(&db, "btree", "t");
    db.with_txn(|txn| {
        for i in [5i64, 1, 9, 3, 7] {
            db.insert(txn, rel, rec(i, "x", 0.0))?;
        }
        assert!(matches!(
            db.insert(txn, rel, rec(5, "dup", 0.0)),
            Err(DmxError::Duplicate(_))
        ));
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            Some(vec![0]),
        )?;
        let mut ids = Vec::new();
        while let Some(item) = db.scan_next(txn, scan)? {
            ids.push(item.values.unwrap()[0].as_int()?);
        }
        assert_eq!(ids, vec![1, 3, 5, 7, 9], "key-sequential order");
        Ok(())
    })
    .unwrap();
}

// ----------------------------------------------------------------------
// Veto attachment: exercises the two-step protocol + partial rollback.
// ----------------------------------------------------------------------

struct VetoBigIds {
    calls: AtomicU32,
}

impl Attachment for VetoBigIds {
    fn name(&self) -> &str {
        "veto_big_ids"
    }
    fn validate_params(&self, p: &AttrList, _s: &Schema) -> Result<()> {
        p.check_allowed(&[], self.name())
    }
    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _name: &str,
        _params: &AttrList,
    ) -> Result<Vec<u8>> {
        Ok(Vec::new())
    }
    fn destroy_instance(&self, _s: &Arc<CommonServices>, _d: &[u8]) -> Result<()> {
        Ok(())
    }
    fn on_insert(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        // invoked once per modification, servicing all instances
        self.calls.fetch_add(1, Ordering::SeqCst);
        assert!(!instances.is_empty());
        if new.values[0].as_int()? > 1000 {
            return Err(DmxError::veto(self.name(), "id too large"));
        }
        Ok(())
    }
    fn on_update(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _i: &[AttachmentInstance],
        _ok: &RecordKey,
        _nk: &RecordKey,
        _old: &Record,
        new: &Record,
    ) -> Result<()> {
        if new.values[0].as_int()? > 1000 {
            return Err(DmxError::veto(self.name(), "id too large"));
        }
        Ok(())
    }
    fn on_delete(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _i: &[AttachmentInstance],
        _k: &RecordKey,
        _old: &Record,
    ) -> Result<()> {
        Ok(())
    }
    fn undo(
        &self,
        _s: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        _lsn: Lsn,
        _op: u8,
        _payload: &[u8],
    ) -> Result<()> {
        Ok(())
    }
}

#[test]
fn veto_triggers_partial_rollback_of_storage_op() {
    let reg = registry();
    let veto = Arc::new(VetoBigIds {
        calls: AtomicU32::new(0),
    });
    reg.register_attachment(veto.clone()).unwrap();
    let db = Database::open_fresh(reg).unwrap();
    let rel = db
        .with_txn(|txn| db.create_relation(txn, "t", schema(), "heap", &AttrList::new()))
        .unwrap();
    db.with_txn(|txn| {
        db.create_attachment(txn, "t", "veto_big_ids", "guard_a", &AttrList::new())?;
        db.create_attachment(txn, "t", "veto_big_ids", "guard_b", &AttrList::new())
    })
    .unwrap();
    assert_eq!(
        db.catalog().get(rel).unwrap().attachment_count(),
        2,
        "two instances of one type"
    );

    let txn = db.begin();
    let ok_key = db.insert(&txn, rel, rec(1, "fine", 1.0)).unwrap();
    let calls_before = veto.calls.load(Ordering::SeqCst);
    let err = db.insert(&txn, rel, rec(5000, "huge", 1.0)).unwrap_err();
    assert!(matches!(err, DmxError::Veto { .. }));
    assert_eq!(
        veto.calls.load(Ordering::SeqCst),
        calls_before + 1,
        "type invoked once per modification (not per instance)"
    );
    // The storage-method insert was undone by the common recovery log;
    // the transaction itself continues.
    assert!(db.fetch(&txn, rel, &ok_key, None, None).unwrap().is_some());
    let scan = db
        .open_scan(
            &txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )
        .unwrap();
    let mut n = 0;
    while db.scan_next(&txn, scan).unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, 1, "vetoed record is gone, prior record remains");
    db.commit(&txn).unwrap();
    assert_eq!(db.catalog().get(rel).unwrap().stats.records(), 1);
}

#[test]
fn scan_positions_saved_and_restored_across_savepoint_rollback() {
    let db = open_db();
    let rel = make_rel(&db, "btree", "t");
    db.with_txn(|txn| {
        for i in 0..10 {
            db.insert(txn, rel, rec(i, "x", 0.0))?;
        }
        Ok(())
    })
    .unwrap();
    let txn = db.begin();
    let scan = db
        .open_scan(
            &txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            Some(vec![0]),
        )
        .unwrap();
    // advance to id=1
    for _ in 0..2 {
        db.scan_next(&txn, scan).unwrap().unwrap();
    }
    db.savepoint(&txn, "sp").unwrap();
    // advance further and do some work that will be rolled back
    for _ in 0..3 {
        db.scan_next(&txn, scan).unwrap().unwrap();
    }
    db.insert(&txn, rel, rec(100, "rolled", 0.0)).unwrap();
    db.rollback_to_savepoint(&txn, "sp").unwrap();
    // scan resumes where it was when the savepoint was established
    let item = db.scan_next(&txn, scan).unwrap().unwrap();
    assert_eq!(item.values.unwrap()[0], Value::Int(2));
    db.commit(&txn).unwrap();
}

#[test]
fn scans_closed_at_transaction_end() {
    let db = open_db();
    let rel = make_rel(&db, "heap", "t");
    let txn = db.begin();
    let id = txn.id();
    db.open_scan(
        &txn,
        rel,
        AccessPath::StorageMethod,
        AccessQuery::All,
        None,
        None,
    )
    .unwrap();
    assert_eq!(db.scans().open_count(id), 1);
    db.commit(&txn).unwrap();
    assert_eq!(db.scans().open_count(id), 0, "closed at termination");
}

#[test]
fn heap_update_relocation_on_growth() {
    let db = open_db();
    let rel = db
        .with_txn(|txn| {
            db.create_relation(
                txn,
                "t",
                Schema::new(vec![
                    ColumnDef::not_null("id", DataType::Int),
                    ColumnDef::not_null("blob", DataType::Str),
                ])
                .unwrap(),
                "heap",
                &AttrList::new(),
            )
        })
        .unwrap();
    // Fill a page almost to capacity, then grow one record far beyond the
    // page's free space: the heap must relocate it under a new RID.
    let big = "y".repeat(3000);
    let keys = db
        .with_txn(|txn| {
            (0..2)
                .map(|i| {
                    db.insert(
                        txn,
                        rel,
                        Record::new(vec![Value::Int(i), Value::Str(big.clone())]),
                    )
                })
                .collect::<Result<Vec<_>>>()
        })
        .unwrap();
    let huge = "z".repeat(6000);
    db.with_txn(|txn| {
        let nk = db.update(
            txn,
            rel,
            &keys[0],
            Record::new(vec![Value::Int(0), Value::Str(huge.clone())]),
        )?;
        assert_ne!(nk, keys[0], "record relocated");
        let row = db.fetch(txn, rel, &nk, Some(&[1]), None)?.unwrap();
        assert_eq!(row[0].as_str()?.len(), 6000);
        assert!(db.fetch(txn, rel, &keys[0], None, None)?.is_none());
        Ok(())
    })
    .unwrap();
}
