//! End-to-end SQL tests: DDL with extension clauses, DML, access-path
//! selection, joins, aggregates, bound-plan caching and invalidation,
//! authorization, transactions.

// Integration-test harnesses are exempt from the runtime panic
// discipline: a broken fixture should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use dmx_attach::register_builtin_attachments;
use dmx_core::{Database, ExtensionRegistry};
use dmx_query::{Session, SqlExt};
use dmx_storage::register_builtin_storage;
use dmx_types::{DmxError, Value};

fn open_db() -> Arc<Database> {
    let reg = ExtensionRegistry::new();
    register_builtin_storage(&reg).unwrap();
    register_builtin_attachments(&reg).unwrap();
    Database::open_fresh(reg).unwrap()
}

fn setup_emp_n(db: &Arc<Database>, n: usize) {
    db.execute_sql(
        "CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT)",
    )
    .unwrap();
    for i in 0..n {
        db.execute_sql(&format!(
            "INSERT INTO emp VALUES ({i}, 'emp{i}', {}, {:.1})",
            i % 5,
            1000.0 + i as f64 * 10.0
        ))
        .unwrap();
    }
}

fn setup_emp(db: &Arc<Database>) {
    setup_emp_n(db, 100)
}

#[test]
fn quickstart_shape() {
    let db = open_db();
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING, salary FLOAT) USING heap")
        .unwrap();
    db.execute_sql("CREATE INDEX emp_id ON emp USING btree (id) WITH (unique=true)")
        .unwrap();
    db.execute_sql("INSERT INTO emp VALUES (1, 'ann', 100.0)")
        .unwrap();
    let rows = db.query_sql("SELECT name FROM emp WHERE id = 1").unwrap();
    assert_eq!(rows, vec![vec![Value::from("ann")]]);
}

#[test]
fn select_filters_projection_order_limit() {
    let db = open_db();
    setup_emp(&db);
    let rows = db
        .query_sql(
            "SELECT id, salary FROM emp WHERE dept = 2 AND salary > 1500 ORDER BY id DESC LIMIT 3",
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][0], Value::Int(97));
    assert_eq!(rows[1][0], Value::Int(92));
    assert_eq!(rows[2][0], Value::Int(87));
    // expressions in projections
    let rows = db
        .query_sql("SELECT id * 2 + 1 FROM emp WHERE id = 10")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(21)]]);
    // LIKE and functions
    let rows = db
        .query_sql("SELECT COUNT(*) FROM emp WHERE name LIKE 'emp1%'")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(11)); // emp1, emp10..emp19
}

#[test]
fn aggregates_and_group_by() {
    let db = open_db();
    setup_emp(&db);
    let r = db
        .execute_sql("SELECT COUNT(*), SUM(id), MIN(salary), MAX(salary), AVG(id) FROM emp")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(100));
    assert_eq!(r.rows[0][1], Value::Int(4950));
    assert_eq!(r.rows[0][2], Value::Float(1000.0));
    assert_eq!(r.rows[0][3], Value::Float(1990.0));
    assert_eq!(r.rows[0][4], Value::Float(49.5));
    // grouped
    let rows = db
        .query_sql("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
        .unwrap();
    assert_eq!(rows.len(), 5);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64));
        assert_eq!(row[1], Value::Int(20));
    }
    // aggregates over empty input
    let rows = db
        .query_sql("SELECT COUNT(*), SUM(id) FROM emp WHERE id > 10000")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
}

#[test]
fn index_is_chosen_and_correct() {
    let db = open_db();
    setup_emp_n(&db, 2000);
    // without an index: full scan plan
    let plan = db
        .query_sql("EXPLAIN SELECT name FROM emp WHERE id = 42")
        .unwrap();
    let text: String = plan
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(text.contains("storage-method"), "{text}");

    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")
        .unwrap();
    let plan = db
        .query_sql("EXPLAIN SELECT name FROM emp WHERE id = 42")
        .unwrap();
    let text: String = plan
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(
        text.contains("attachment"),
        "planner picked the index: {text}"
    );

    let rows = db.query_sql("SELECT name FROM emp WHERE id = 42").unwrap();
    assert_eq!(rows, vec![vec![Value::from("emp42")]]);
    // range predicates work through the index too
    let rows = db
        .query_sql("SELECT id FROM emp WHERE id >= 1995 ORDER BY id")
        .unwrap();
    assert_eq!(rows.len(), 5);

    // covered query: only indexed fields referenced → no record fetches
    let plan = db
        .query_sql("EXPLAIN SELECT id FROM emp WHERE id >= 1995")
        .unwrap();
    let text: String = plan
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(text.contains("covered"), "{text}");
    let rows = db.query_sql("SELECT id FROM emp WHERE id >= 1995").unwrap();
    assert_eq!(rows.len(), 5);
}

#[test]
fn update_delete_with_predicates() {
    let db = open_db();
    setup_emp(&db);
    let r = db
        .execute_sql("UPDATE emp SET salary = salary * 2, name = 'boosted' WHERE dept = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(20));
    let rows = db
        .query_sql("SELECT COUNT(*) FROM emp WHERE name = 'boosted'")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(20));
    let r = db.execute_sql("DELETE FROM emp WHERE dept = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(20));
    let rows = db.query_sql("SELECT COUNT(*) FROM emp").unwrap();
    assert_eq!(rows[0][0], Value::Int(80));
}

#[test]
fn joins_all_strategies_agree() {
    let db = open_db();
    db.execute_sql("CREATE TABLE dept (id INT NOT NULL, dname STRING NOT NULL)")
        .unwrap();
    for d in 0..5 {
        db.execute_sql(&format!("INSERT INTO dept VALUES ({d}, 'dept{d}')"))
            .unwrap();
    }
    setup_emp(&db);

    let q =
        "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id AND e.id < 10 ORDER BY 1";
    // 1. plain nested loop
    let nl = db.query_sql(q).unwrap();
    assert_eq!(nl.len(), 10);
    assert_eq!(nl[0][0], Value::from("emp0"));
    assert_eq!(nl[0][1], Value::from("dept0"));

    // 2. index nested loop (index on the inner join column)
    db.execute_sql("CREATE UNIQUE INDEX dept_pk ON dept (id)")
        .unwrap();
    let inl = db.query_sql(q).unwrap();
    assert_eq!(nl, inl, "index NL join returns identical rows");

    // 3. join index
    db.execute_sql("CREATE ATTACHMENT ed ON emp USING joinindex WITH (side=left, fields=dept)")
        .unwrap();
    db.execute_sql(
        "CREATE ATTACHMENT ed ON dept USING joinindex WITH (side=right, fields=id, other=emp)",
    )
    .unwrap();
    let plan = db.query_sql(&format!("EXPLAIN {q}")).unwrap();
    let text: String = plan
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(text.contains("JoinIndexJoin"), "{text}");
    let ji = db.query_sql(q).unwrap();
    assert_eq!(nl, ji, "join-index join returns identical rows");
}

#[test]
fn check_constraint_via_sql() {
    let db = open_db();
    db.execute_sql("CREATE TABLE acc (id INT NOT NULL, bal FLOAT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE CONSTRAINT bal_pos ON acc CHECK (bal >= 0)")
        .unwrap();
    db.execute_sql("INSERT INTO acc VALUES (1, 10.0)").unwrap();
    let err = db
        .execute_sql("INSERT INTO acc VALUES (2, -1.0)")
        .unwrap_err();
    assert!(matches!(err, DmxError::Veto { .. }));
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM acc").unwrap()[0][0],
        Value::Int(1)
    );
    // deferred: violation inside a txn is fine if fixed before COMMIT
    let sess = Session::new(db.clone());
    sess.execute("CREATE CONSTRAINT bal_cap ON acc CHECK (bal <= 100) DEFERRED")
        .unwrap();
    sess.execute("BEGIN").unwrap();
    sess.execute("UPDATE acc SET bal = 500.0 WHERE id = 1")
        .unwrap();
    sess.execute("UPDATE acc SET bal = 50.0 WHERE id = 1")
        .unwrap();
    sess.execute("COMMIT").unwrap();
    sess.execute("BEGIN").unwrap();
    sess.execute("UPDATE acc SET bal = 500.0 WHERE id = 1")
        .unwrap();
    let err = sess.execute("COMMIT").unwrap_err();
    assert!(matches!(err, DmxError::ConstraintViolation(_)));
    assert_eq!(
        db.query_sql("SELECT bal FROM acc WHERE id = 1").unwrap()[0][0],
        Value::Float(50.0)
    );
}

#[test]
fn session_transactions_and_savepoints() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (x INT NOT NULL)").unwrap();
    let sess = Session::new(db.clone());
    sess.execute("BEGIN").unwrap();
    sess.execute("INSERT INTO t VALUES (1)").unwrap();
    sess.execute("SAVEPOINT sp").unwrap();
    sess.execute("INSERT INTO t VALUES (2)").unwrap();
    sess.execute("ROLLBACK TO SAVEPOINT sp").unwrap();
    sess.execute("INSERT INTO t VALUES (3)").unwrap();
    sess.execute("COMMIT").unwrap();
    let rows = db.query_sql("SELECT x FROM t ORDER BY x").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    // full rollback
    sess.execute("BEGIN").unwrap();
    sess.execute("DELETE FROM t").unwrap();
    sess.execute("ROLLBACK").unwrap();
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(2)
    );
    // autocommit trait refuses txn control
    assert!(db.execute_sql("BEGIN").is_err());
}

#[test]
fn plan_cache_reuse_and_invalidation() {
    let db = open_db();
    setup_emp(&db);
    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")
        .unwrap();
    let cache = db.query_state::<dmx_query::PlanCache, _>(Default::default);
    let q = "SELECT name FROM emp WHERE id = 7";
    db.query_sql(q).unwrap();
    let misses0 = cache
        .stats
        .misses
        .load(std::sync::atomic::Ordering::Relaxed);
    let hits0 = cache.stats.hits.load(std::sync::atomic::Ordering::Relaxed);
    for _ in 0..5 {
        db.query_sql(q).unwrap();
    }
    assert_eq!(
        cache.stats.hits.load(std::sync::atomic::Ordering::Relaxed),
        hits0 + 5,
        "subsequent executions reuse the bound plan"
    );
    assert_eq!(
        cache
            .stats
            .misses
            .load(std::sync::atomic::Ordering::Relaxed),
        misses0
    );
    // dropping the index invalidates; the next execution re-translates
    // automatically and still answers correctly
    db.execute_sql("DROP INDEX emp_pk ON emp").unwrap();
    let rows = db.query_sql(q).unwrap();
    assert_eq!(rows, vec![vec![Value::from("emp7")]]);
    assert!(
        cache
            .stats
            .retranslations
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "plan was re-translated after DDL"
    );
}

#[test]
fn authorization_enforced_per_user() {
    let db = open_db();
    setup_emp(&db);
    let bob = Session::with_user(db.clone(), "bob");
    let err = bob.execute("SELECT * FROM emp").unwrap_err();
    assert!(matches!(err, DmxError::Unauthorized(_)));
    db.execute_sql("GRANT select ON emp TO bob").unwrap();
    assert_eq!(bob.execute("SELECT * FROM emp").unwrap().len(), 100);
    let err = bob.execute("DELETE FROM emp").unwrap_err();
    assert!(matches!(err, DmxError::Unauthorized(_)));
    db.execute_sql("REVOKE select ON emp FROM bob").unwrap();
    assert!(bob.execute("SELECT * FROM emp").is_err());
    // bob owns what bob creates
    bob.execute("CREATE TABLE bobs (x INT)").unwrap();
    bob.execute("INSERT INTO bobs VALUES (1)").unwrap();
    assert_eq!(bob.execute("SELECT * FROM bobs").unwrap().len(), 1);
}

#[test]
fn spatial_sql_with_rtree() {
    let db = open_db();
    db.execute_sql("CREATE TABLE parcels (id INT NOT NULL, area RECT)")
        .unwrap();
    db.execute_sql("CREATE INDEX parcels_rt ON parcels USING rtree (area)")
        .unwrap();
    for i in 0..800 {
        let x = (i % 10) * 100;
        let y = (i / 10) * 100;
        db.execute_sql(&format!(
            "INSERT INTO parcels VALUES ({i}, RECT({x}, {y}, {}, {}))",
            x + 90,
            y + 90
        ))
        .unwrap();
    }
    // which parcels enclose this point-ish query box?
    let rows = db
        .query_sql("SELECT id FROM parcels WHERE area ENCLOSES RECT(110, 110, 120, 120)")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(11)]]);
    let plan = db
        .query_sql("EXPLAIN SELECT id FROM parcels WHERE area ENCLOSES RECT(110, 110, 120, 120)")
        .unwrap();
    let text: String = plan
        .iter()
        .map(|r| r[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(text.contains("attachment"), "R-tree chosen: {text}");
    // window query
    let rows = db
        .query_sql("SELECT COUNT(*) FROM parcels WHERE RECT(0, 0, 290, 90) ENCLOSES area")
        .unwrap();
    assert_eq!(
        rows[0][0],
        Value::Int(3),
        "parcels 0, 1 and 2 fit the window"
    );
}

#[test]
fn storage_method_choice_via_sql() {
    let db = open_db();
    // a B-tree-organized relation: keyed storage
    db.execute_sql("CREATE TABLE kv (k INT NOT NULL, v STRING) USING btree WITH (key = k)")
        .unwrap();
    for i in [5, 1, 9, 3] {
        db.execute_sql(&format!("INSERT INTO kv VALUES ({i}, 'v{i}')"))
            .unwrap();
    }
    // key-ordered scans come straight from the storage method
    let rows = db.query_sql("SELECT k FROM kv").unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(3)],
            vec![Value::Int(5)],
            vec![Value::Int(9)]
        ]
    );
    // a temporary relation
    db.execute_sql("CREATE TABLE scratch (x INT) USING memory")
        .unwrap();
    db.execute_sql("INSERT INTO scratch VALUES (1), (2)")
        .unwrap();
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM scratch").unwrap()[0][0],
        Value::Int(2)
    );
    // duplicate storage key rejected
    let err = db
        .execute_sql("INSERT INTO kv VALUES (5, 'dup')")
        .unwrap_err();
    assert!(matches!(err, DmxError::Duplicate(_)));
}

#[test]
fn referential_integrity_via_sql() {
    let db = open_db();
    db.execute_sql("CREATE TABLE dept (id INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, dept INT)")
        .unwrap();
    db.execute_sql(
        "CREATE ATTACHMENT fk_c ON emp USING refint WITH (role=child, fields=dept, other=dept, other_fields=id)",
    )
    .unwrap();
    db.execute_sql(
        "CREATE ATTACHMENT fk_p ON dept USING refint WITH (role=parent, fields=id, other=emp, other_fields=dept, on_delete=cascade)",
    )
    .unwrap();
    db.execute_sql("INSERT INTO dept VALUES (1)").unwrap();
    db.execute_sql("INSERT INTO emp VALUES (10, 1)").unwrap();
    assert!(db.execute_sql("INSERT INTO emp VALUES (11, 99)").is_err());
    db.execute_sql("DELETE FROM dept WHERE id = 1").unwrap();
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM emp").unwrap()[0][0],
        Value::Int(0),
        "cascade removed the employee"
    );
}

#[test]
fn drop_table_via_sql_and_errors() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (x INT)").unwrap();
    db.execute_sql("DROP TABLE t").unwrap();
    assert!(matches!(
        db.query_sql("SELECT * FROM t"),
        Err(DmxError::NotFound(_))
    ));
    // planner errors
    db.execute_sql("CREATE TABLE u (x INT)").unwrap();
    assert!(matches!(
        db.query_sql("SELECT nope FROM u"),
        Err(DmxError::Planning(_))
    ));
    assert!(
        db.execute_sql("CREATE TABLE u (x INT)").is_err(),
        "duplicate"
    );
    // bad attribute caught by validate_params at DDL time
    assert!(db
        .execute_sql("CREATE TABLE v (x INT) USING heap WITH (bogus = 1)")
        .is_err());
}

#[test]
fn three_way_join() {
    let db = open_db();
    db.execute_sql("CREATE TABLE a (id INT NOT NULL)").unwrap();
    db.execute_sql("CREATE TABLE b (id INT NOT NULL, a_id INT)")
        .unwrap();
    db.execute_sql("CREATE TABLE c (id INT NOT NULL, b_id INT)")
        .unwrap();
    for i in 0..3 {
        db.execute_sql(&format!("INSERT INTO a VALUES ({i})"))
            .unwrap();
        db.execute_sql(&format!("INSERT INTO b VALUES ({i}, {i})"))
            .unwrap();
        db.execute_sql(&format!("INSERT INTO c VALUES ({i}, {i})"))
            .unwrap();
        db.execute_sql(&format!("INSERT INTO c VALUES ({}, {i})", i + 10))
            .unwrap();
    }
    let rows = db
        .query_sql(
            "SELECT a.id, c.id FROM a, b, c WHERE b.a_id = a.id AND c.b_id = b.id ORDER BY 1, 2",
        )
        .unwrap();
    assert_eq!(rows.len(), 6);
    assert_eq!(rows[0], vec![Value::Int(0), Value::Int(0)]);
    assert_eq!(rows[1], vec![Value::Int(0), Value::Int(10)]);
}
