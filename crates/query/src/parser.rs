//! Recursive-descent parser for the mini SQL, including the paper's DDL
//! extension: `CREATE … USING <extension> WITH (attr = value, …)`.

use dmx_expr::{BinOp, CmpOp};
use dmx_types::{AttrList, DataType, DmxError, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parses one statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.pos != p.tokens.len() {
        return Err(DmxError::Parse(format!(
            "unexpected trailing input near {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DmxError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(DmxError::Parse(format!(
                "expected '{s}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(DmxError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(DmxError::Parse(format!("expected string, found {other:?}"))),
        }
    }

    /// A possibly qualified table name (`emp` or `sys.metrics`), kept
    /// dotted — the catalog treats the whole thing as one name.
    fn table_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let rest = self.ident()?;
            return Ok(format!("{first}.{rest}"));
        }
        Ok(first)
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            return Ok(Stmt::Explain(Box::new(self.statement()?), analyze));
        }
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") || self.eat_kw("RELATION") {
                return Ok(Stmt::DropTable {
                    name: self.table_name()?,
                });
            }
            if self.eat_kw("INDEX") || self.eat_kw("ATTACHMENT") || self.eat_kw("CONSTRAINT") {
                let name = self.ident()?;
                self.expect_kw("ON")?;
                let table = self.table_name()?;
                return Ok(Stmt::DropAttachment { name, table });
            }
            return Err(DmxError::Parse("DROP what?".into()));
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.table_name()?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_sym("(")?;
                let mut row = Vec::new();
                if !self.eat_sym(")") {
                    loop {
                        row.push(self.expr()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                }
                rows.push(row);
                if !self.eat_sym(",") {
                    break;
                }
            }
            return Ok(Stmt::Insert { table, rows });
        }
        if self.eat_kw("UPDATE") {
            let table = self.table_name()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym("=")?;
                sets.push((col, self.expr()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let where_ = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Update {
                table,
                sets,
                where_,
            });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.table_name()?;
            let where_ = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Delete { table, where_ });
        }
        if self.at_kw("SELECT") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.eat_kw("BEGIN") {
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            if self.eat_kw("TO") {
                self.eat_kw("SAVEPOINT");
                return Ok(Stmt::RollbackTo(self.ident()?));
            }
            return Ok(Stmt::Rollback);
        }
        if self.eat_kw("SAVEPOINT") {
            return Ok(Stmt::Savepoint(self.ident()?));
        }
        if self.eat_kw("RELEASE") {
            self.eat_kw("SAVEPOINT");
            return Ok(Stmt::Release(self.ident()?));
        }
        if self.eat_kw("CHECK") {
            self.expect_kw("TABLE")?;
            return Ok(Stmt::CheckTable {
                name: self.table_name()?,
            });
        }
        if self.eat_kw("REPAIR") {
            self.expect_kw("TABLE")?;
            return Ok(Stmt::RepairTable {
                name: self.table_name()?,
            });
        }
        if self.eat_kw("ANALYZE") {
            self.expect_kw("TABLE")?;
            return Ok(Stmt::AnalyzeTable {
                name: self.table_name()?,
            });
        }
        if self.eat_kw("GRANT") {
            let privilege = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.table_name()?;
            self.expect_kw("TO")?;
            let user = self.ident()?;
            return Ok(Stmt::Grant {
                privilege,
                table,
                user,
            });
        }
        if self.eat_kw("REVOKE") {
            let privilege = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.table_name()?;
            self.expect_kw("FROM")?;
            let user = self.ident()?;
            return Ok(Stmt::Revoke {
                privilege,
                table,
                user,
            });
        }
        Err(DmxError::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn create(&mut self) -> Result<Stmt> {
        if self.eat_kw("TABLE") || self.eat_kw("RELATION") {
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let cname = self.ident()?;
                let ty = DataType::parse(&self.ident()?)?;
                let mut not_null = false;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    not_null = true;
                } else {
                    self.eat_kw("NULL");
                }
                columns.push(ColDef {
                    name: cname,
                    data_type: ty,
                    not_null,
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let using = if self.eat_kw("USING") {
                Some(self.ident()?)
            } else {
                None
            };
            let with = self.with_clause()?;
            return Ok(Stmt::CreateTable {
                name,
                columns,
                using,
                with,
            });
        }
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.table_name()?;
            let using = if self.eat_kw("USING") {
                Some(self.ident()?)
            } else {
                None
            };
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let with = self.with_clause()?;
            return Ok(Stmt::CreateIndex {
                name,
                table,
                using,
                columns,
                unique,
                with,
            });
        }
        if unique {
            return Err(DmxError::Parse(
                "UNIQUE only applies to CREATE INDEX".into(),
            ));
        }
        if self.eat_kw("ATTACHMENT") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.table_name()?;
            self.expect_kw("USING")?;
            let using = self.ident()?;
            let with = self.with_clause()?;
            return Ok(Stmt::CreateAttachment {
                name,
                table,
                using,
                with,
            });
        }
        if self.eat_kw("CONSTRAINT") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.table_name()?;
            self.expect_kw("CHECK")?;
            self.expect_sym("(")?;
            let expr = self.expr()?;
            self.expect_sym(")")?;
            let deferred = self.eat_kw("DEFERRED");
            return Ok(Stmt::CreateCheck {
                name,
                table,
                expr,
                deferred,
            });
        }
        Err(DmxError::Parse("CREATE what?".into()))
    }

    /// `WITH ( k = v, … )` — values may be identifiers, literals or
    /// strings; the pairs feed the extension's `validate_params`.
    fn with_clause(&mut self) -> Result<AttrList> {
        if !self.eat_kw("WITH") {
            return Ok(AttrList::new());
        }
        self.expect_sym("(")?;
        let mut pairs: Vec<(String, String)> = Vec::new();
        loop {
            let key = self.ident()?;
            self.expect_sym("=")?;
            let value = match self.bump() {
                Some(Token::Ident(s)) => s,
                Some(Token::Str(s)) => s,
                Some(Token::Int(i)) => i.to_string(),
                Some(Token::Float(x)) => x.to_string(),
                other => {
                    return Err(DmxError::Parse(format!(
                        "expected attribute value, found {other:?}"
                    )))
                }
            };
            // allow comma-separated field lists: `fields = a, b` would be
            // ambiguous, so multi-value attributes use quoted strings
            pairs.push((key, value));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        AttrList::from_pairs(pairs)
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Star);
            } else {
                let e = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr(e, alias));
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.table_name()?;
            let alias = match self.peek() {
                Some(Token::Ident(s)) if !is_reserved(s) => Some(self.ident()?),
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let target = match self.bump() {
                    Some(Token::Int(i)) if i >= 1 => OrderTarget::Position(i as usize),
                    Some(Token::Ident(s)) => OrderTarget::Name(s),
                    other => {
                        return Err(DmxError::Parse(format!(
                            "ORDER BY expects a column name or position, found {other:?}"
                        )))
                    }
                };
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey {
                    column: target,
                    desc,
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Token::Int(i)) if i >= 0 => Some(i as u64),
                other => return Err(DmxError::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_,
            group_by,
            order_by,
            limit,
        })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            terms.push(self.and_expr()?);
        }
        Ok(match terms.pop() {
            Some(only) if terms.is_empty() => only,
            Some(last) => {
                terms.push(last);
                AstExpr::Or(terms)
            }
            None => AstExpr::Or(terms),
        })
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut terms = vec![self.not_expr()?];
        while self.eat_kw("AND") {
            terms.push(self.not_expr()?);
        }
        Ok(match terms.pop() {
            Some(only) if terms.is_empty() => only,
            Some(last) => {
                terms.push(last);
                AstExpr::And(terms)
            }
            None => AstExpr::And(terms),
        })
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_kw("NOT") {
            return Ok(AstExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<AstExpr> {
        let left = self.add_expr()?;
        // postfix forms
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(AstExpr::IsNull(Box::new(left), negated));
        }
        if self.eat_kw("LIKE") {
            let pat = self.string()?;
            return Ok(AstExpr::Like(Box::new(left), pat));
        }
        if self.eat_kw("ENCLOSES") {
            let right = self.add_expr()?;
            return Ok(AstExpr::Encloses(Box::new(left), Box::new(right)));
        }
        if self.eat_kw("INTERSECTS") {
            let right = self.add_expr()?;
            return Ok(AstExpr::Intersects(Box::new(left), Box::new(right)));
        }
        let op = match self.peek() {
            Some(Token::Sym("=")) => Some(CmpOp::Eq),
            Some(Token::Sym("<>")) => Some(CmpOp::Ne),
            Some(Token::Sym("<")) => Some(CmpOp::Lt),
            Some(Token::Sym("<=")) => Some(CmpOp::Le),
            Some(Token::Sym(">")) => Some(CmpOp::Gt),
            Some(Token::Sym(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.bump();
                let right = self.add_expr()?;
                Ok(AstExpr::Cmp(op, Box::new(left), Box::new(right)))
            }
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => BinOp::Add,
                Some(Token::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = AstExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => BinOp::Mul,
                Some(Token::Sym("/")) => BinOp::Div,
                Some(Token::Sym("%")) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = AstExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<AstExpr> {
        if self.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                AstExpr::Lit(Value::Int(i)) => AstExpr::Lit(Value::Int(-i)),
                AstExpr::Lit(Value::Float(x)) => AstExpr::Lit(Value::Float(-x)),
                e => AstExpr::Neg(Box::new(e)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(AstExpr::Lit(Value::Int(i))),
            Some(Token::Float(x)) => Ok(AstExpr::Lit(Value::Float(x))),
            Some(Token::Str(s)) => Ok(AstExpr::Lit(Value::Str(s))),
            Some(Token::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                if id.eq_ignore_ascii_case("TRUE") {
                    return Ok(AstExpr::Lit(Value::Bool(true)));
                }
                if id.eq_ignore_ascii_case("FALSE") {
                    return Ok(AstExpr::Lit(Value::Bool(false)));
                }
                if id.eq_ignore_ascii_case("NULL") {
                    return Ok(AstExpr::Lit(Value::Null));
                }
                // function call?
                if self.eat_sym("(") {
                    if id.eq_ignore_ascii_case("COUNT") && self.eat_sym("*") {
                        self.expect_sym(")")?;
                        return Ok(AstExpr::CountStar);
                    }
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                    }
                    return Ok(AstExpr::Func(id, args));
                }
                // qualified column?
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column(Some(id), col));
                }
                Ok(AstExpr::Column(None, id))
            }
            other => Err(DmxError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_reserved(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "WHERE", "GROUP", "ORDER", "LIMIT", "FROM", "SELECT", "AND", "OR", "NOT", "AS", "ON",
        "SET", "VALUES", "JOIN", "USING", "WITH", "ASC", "DESC", "BY",
    ];
    RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_extension_clause() {
        let s = parse(
            "CREATE TABLE emp (id INT NOT NULL, name STRING, salary FLOAT) USING btree WITH (key = id)",
        )
        .unwrap();
        match s {
            Stmt::CreateTable {
                name,
                columns,
                using,
                with,
            } => {
                assert_eq!(name, "emp");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].not_null);
                assert!(!columns[1].not_null);
                assert_eq!(using.as_deref(), Some("btree"));
                assert_eq!(with.get("key"), Some("id"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_index_variants() {
        let s = parse("CREATE UNIQUE INDEX i ON t (a, b) WITH (x='1')").unwrap();
        match s {
            Stmt::CreateIndex {
                unique,
                columns,
                using,
                ..
            } => {
                assert!(unique);
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(using, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("CREATE INDEX i ON t USING hash (a)").unwrap(),
            Stmt::CreateIndex { using: Some(u), .. } if u == "hash"
        ));
    }

    #[test]
    fn check_and_attachment_ddl() {
        let s = parse("CREATE CONSTRAINT pos ON emp CHECK (salary > 0) DEFERRED").unwrap();
        assert!(matches!(s, Stmt::CreateCheck { deferred: true, .. }));
        let s = parse(
            "CREATE ATTACHMENT fk ON emp USING refint WITH (role=child, fields=dept, other=dept, other_fields=id)",
        )
        .unwrap();
        assert!(matches!(s, Stmt::CreateAttachment { using, .. } if using == "refint"));
    }

    #[test]
    fn dml_statements() {
        let s = parse("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 3.5)").unwrap();
        match s {
            Stmt::Insert { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        assert!(matches!(s, Stmt::Update { sets, where_: Some(_), .. } if sets.len() == 2));
        let s = parse("DELETE FROM t").unwrap();
        assert!(matches!(s, Stmt::Delete { where_: None, .. }));
    }

    #[test]
    fn select_full_shape() {
        let s = parse(
            "SELECT e.name AS n, COUNT(*), SUM(e.salary) FROM emp e, dept d \
             WHERE e.dept = d.id AND e.salary >= 100 GROUP BY e.name \
             ORDER BY n DESC, 2 LIMIT 10",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.items.len(), 3);
                assert_eq!(sel.from.len(), 2);
                assert_eq!(sel.from[0].alias.as_deref(), Some("e"));
                assert!(sel.where_.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 2);
                assert!(sel.order_by[0].desc);
                assert_eq!(sel.order_by[1].column, OrderTarget::Position(2));
                assert_eq!(sel.limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spatial_and_misc_expressions() {
        let s = parse("SELECT * FROM p WHERE area ENCLOSES RECT(1, 2, 3, 4)").unwrap();
        if let Stmt::Select(sel) = s {
            assert!(matches!(sel.where_, Some(AstExpr::Encloses(_, _))));
        } else {
            panic!()
        }
        let s = parse("SELECT * FROM t WHERE name LIKE 'a%' AND x IS NOT NULL").unwrap();
        if let Stmt::Select(sel) = s {
            match sel.where_.unwrap() {
                AstExpr::And(v) => {
                    assert!(matches!(&v[0], AstExpr::Like(_, p) if p == "a%"));
                    assert!(matches!(&v[1], AstExpr::IsNull(_, true)));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn txn_control_and_grants() {
        assert_eq!(parse("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Stmt::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Stmt::Rollback);
        assert_eq!(
            parse("ROLLBACK TO SAVEPOINT sp1").unwrap(),
            Stmt::RollbackTo("sp1".into())
        );
        assert_eq!(parse("SAVEPOINT s").unwrap(), Stmt::Savepoint("s".into()));
        assert!(matches!(
            parse("GRANT select ON emp TO bob").unwrap(),
            Stmt::Grant { .. }
        ));
    }

    #[test]
    fn operator_precedence() {
        let s = parse("SELECT * FROM t WHERE a + 1 * 2 = 3 OR b = 4 AND c = 5").unwrap();
        if let Stmt::Select(sel) = s {
            // OR of [a+1*2=3, AND[b=4, c=5]]
            match sel.where_.unwrap() {
                AstExpr::Or(v) => {
                    assert_eq!(v.len(), 2);
                    assert!(matches!(&v[1], AstExpr::And(t) if t.len() == 2));
                    if let AstExpr::Cmp(_, l, _) = &v[0] {
                        // a + (1*2)
                        assert!(matches!(
                            l.as_ref(),
                            AstExpr::Arith(BinOp::Add, _, r) if matches!(r.as_ref(), AstExpr::Arith(BinOp::Mul, _, _))
                        ));
                    } else {
                        panic!()
                    }
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("CREATE TABLE t").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("SELECT * FROM t; garbage").is_err());
        assert!(parse("UPDATE t SET").is_err());
    }

    #[test]
    fn explain_wraps() {
        assert!(matches!(
            parse("EXPLAIN SELECT * FROM t").unwrap(),
            Stmt::Explain(inner, false) if matches!(*inner, Stmt::Select(_))
        ));
        assert!(matches!(
            parse("EXPLAIN ANALYZE SELECT * FROM t").unwrap(),
            Stmt::Explain(inner, true) if matches!(*inner, Stmt::Select(_))
        ));
        assert!(matches!(
            parse("EXPLAIN UPDATE t SET a = 1").unwrap(),
            Stmt::Explain(inner, false) if matches!(*inner, Stmt::Update { .. })
        ));
    }

    #[test]
    fn dotted_table_names() {
        let s = parse("SELECT * FROM sys.metrics m WHERE m.kind = 'counter'").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.from[0].table, "sys.metrics");
                assert_eq!(sel.from[0].alias.as_deref(), Some("m"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("DELETE FROM sys.trace").unwrap(),
            Stmt::Delete { table, .. } if table == "sys.trace"
        ));
        assert!(matches!(
            parse("GRANT select ON sys.metrics TO bob").unwrap(),
            Stmt::Grant { table, .. } if table == "sys.metrics"
        ));
    }
}
