//! Sessions: statement dispatch, transactions, authorization.

use std::sync::Arc;

use dmx_types::sync::Mutex;

use dmx_attach::check_params;
use dmx_core::{Database, Privilege};
use dmx_expr::eval;
use dmx_txn::Transaction;
use dmx_types::{AttrList, ColumnDef, DmxError, Record, Result, Schema, Value};

use crate::ast::Stmt;
use crate::bind::PlanCache;
use crate::exec;
use crate::parser::parse;
use crate::planner::plan_select;
use crate::semantic::Binder;

/// The rows and column names a statement produced.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    fn affected(n: usize) -> QueryResult {
        QueryResult {
            columns: vec!["count".into()],
            rows: vec![vec![Value::Int(n as i64)]],
        }
    }

    fn empty() -> QueryResult {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a single-row, single-column result.
    pub fn scalar(&self) -> Result<&Value> {
        match (self.rows.as_slice(), self.columns.len()) {
            ([row], 1) if !row.is_empty() => Ok(&row[0]),
            _ => Err(DmxError::InvalidArg(format!(
                "expected scalar result, got {}x{}",
                self.rows.len(),
                self.columns.len()
            ))),
        }
    }
}

/// A user session with explicit transaction control.
pub struct Session {
    db: Arc<Database>,
    user: String,
    cache: Arc<PlanCache>,
    txn: Mutex<Option<Arc<Transaction>>>,
    statements: Arc<dmx_types::obs::Counter>,
}

impl Session {
    /// Opens a session as the bootstrap superuser `admin`.
    pub fn new(db: Arc<Database>) -> Session {
        Session::with_user(db, "admin")
    }

    /// Opens a session as a specific user (authorization applies).
    pub fn with_user(db: Arc<Database>, user: &str) -> Session {
        let cache = db.query_state::<PlanCache, _>(PlanCache::default);
        // publish this database's plan cache through `sys.plan_cache`
        // (idempotent: one cache per database, last registration wins)
        let cache_rows = cache.clone();
        db.set_sys_provider(
            "sys.plan_cache",
            Arc::new(move |db: &Database| cache_rows.dump(db)),
        );
        let statements = db.metrics().counter(dmx_types::obs::name::SQL_STATEMENTS);
        Session {
            db,
            user: user.to_string(),
            cache,
            txn: Mutex::new(None),
            statements,
        }
    }

    /// The session's user.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// True while an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.lock().is_some()
    }

    /// Parses and executes one statement. Outside an explicit
    /// transaction, the statement autocommits.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        self.execute_stmt(sql, stmt)
    }

    fn execute_stmt(&self, sql: &str, stmt: Stmt) -> Result<QueryResult> {
        // counted here (not in `execute`) so `SqlExt::execute_sql`'s
        // one-shot sessions are observed too
        self.statements.incr();
        // transaction control first
        match &stmt {
            Stmt::Begin => {
                let mut cur = self.txn.lock();
                if cur.is_some() {
                    return Err(DmxError::TxnState("transaction already open".into()));
                }
                *cur = Some(self.db.begin());
                return Ok(QueryResult::empty());
            }
            Stmt::Commit => {
                let txn = self
                    .txn
                    .lock()
                    .take()
                    .ok_or_else(|| DmxError::TxnState("no open transaction".into()))?;
                self.db.commit(&txn)?;
                return Ok(QueryResult::empty());
            }
            Stmt::Rollback => {
                let txn = self
                    .txn
                    .lock()
                    .take()
                    .ok_or_else(|| DmxError::TxnState("no open transaction".into()))?;
                self.db.abort(&txn)?;
                return Ok(QueryResult::empty());
            }
            Stmt::Savepoint(name) => {
                let cur = self.txn.lock();
                let txn = cur
                    .as_ref()
                    .ok_or_else(|| DmxError::TxnState("no open transaction".into()))?;
                self.db.savepoint(txn, name)?;
                return Ok(QueryResult::empty());
            }
            Stmt::RollbackTo(name) => {
                let cur = self.txn.lock();
                let txn = cur
                    .as_ref()
                    .ok_or_else(|| DmxError::TxnState("no open transaction".into()))?;
                self.db.rollback_to_savepoint(txn, name)?;
                return Ok(QueryResult::empty());
            }
            Stmt::Release(name) => {
                let cur = self.txn.lock();
                let txn = cur
                    .as_ref()
                    .ok_or_else(|| DmxError::TxnState("no open transaction".into()))?;
                self.db.release_savepoint(txn, name)?;
                return Ok(QueryResult::empty());
            }
            Stmt::RepairTable { name } => {
                // The repair pipeline drives its own WAL-logged
                // transactions (and retries), so it cannot run inside
                // the session's open transaction.
                if self.txn.lock().is_some() {
                    return Err(DmxError::TxnState(
                        "REPAIR TABLE manages its own transactions; commit or rollback first"
                            .into(),
                    ));
                }
                self.check(name, Privilege::Control)?;
                let r = dmx_core::repair_relation(&self.db, name);
                if let Err(e) = &r {
                    self.note_enospc(e);
                }
                let outcome = r?;
                return Ok(QueryResult {
                    columns: vec![
                        "relation".into(),
                        "action".into(),
                        "outcome".into(),
                        "attempts".into(),
                        "recovered".into(),
                        "lost".into(),
                    ],
                    rows: vec![vec![
                        Value::Str(outcome.name.clone()),
                        Value::from(outcome.action.as_str()),
                        Value::from(if outcome.healthy {
                            "healthy"
                        } else {
                            "terminal"
                        }),
                        Value::Int(outcome.attempts as i64),
                        Value::Int(outcome.records_recovered as i64),
                        Value::Int(outcome.records_lost as i64),
                    ]],
                });
            }
            _ => {}
        }
        // other statements run in the open transaction or autocommit
        let open = self.txn.lock().clone();
        match open {
            Some(txn) => {
                let r = self.run(&txn, sql, &stmt);
                if let Err(e) = &r {
                    self.note_enospc(e);
                    if e.is_txn_fatal() {
                        // the transaction is dead; clean up the session
                        let _ = self.db.abort(&txn);
                        *self.txn.lock() = None;
                    }
                }
                r
            }
            None => {
                let txn = self.db.begin();
                match self.run(&txn, sql, &stmt) {
                    Ok(r) => {
                        self.db.commit(&txn)?;
                        Ok(r)
                    }
                    Err(e) => {
                        self.note_enospc(&e);
                        let _ = self.db.abort(&txn);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Running out of space degrades the engine to sticky read-only:
    /// the statement aborts cleanly, and further writes are refused
    /// until an operator frees space and clears the mode. DML paths
    /// note this inside the engine; this catches DDL and repair too.
    fn note_enospc(&self, e: &DmxError) {
        if let DmxError::OutOfSpace(m) = e {
            self.db.enter_read_only(m);
        }
    }

    fn check(&self, table: &str, p: Privilege) -> Result<()> {
        let rd = self.db.catalog().get_by_name(table)?;
        self.db.auth().check(&self.user, rd.id, p)
    }

    fn run(&self, txn: &Arc<Transaction>, sql: &str, stmt: &Stmt) -> Result<QueryResult> {
        match stmt {
            Stmt::Select(sel) => {
                for t in &sel.from {
                    self.check(&t.table, Privilege::Select)?;
                }
                let compiled = self.cache.get_or_compile(&self.db, sql, sel)?;
                let ctx = dmx_core::ExecCtx { db: &self.db, txn };
                // Pure reads run against the transaction's snapshot:
                // no record or gap locks, visibility via the version
                // store. The flag is scoped to this statement so the
                // transaction's own DML keeps strict 2PL.
                let prev = txn.set_snapshot_reads(true);
                let rows = exec::run_to_rows(&compiled.plan, &ctx);
                txn.set_snapshot_reads(prev);
                Ok(QueryResult {
                    columns: compiled.columns.clone(),
                    rows: rows?,
                })
            }
            Stmt::Explain(inner, analyze) => {
                if *analyze {
                    return self.explain_analyze(txn, inner);
                }
                match inner.as_ref() {
                    Stmt::Select(sel) => {
                        let compiled = plan_select(&self.db, sel)?;
                        let mut text = String::new();
                        compiled.plan.describe(0, &mut text);
                        Ok(QueryResult {
                            columns: vec!["plan".into()],
                            rows: text.lines().map(|l| vec![Value::from(l)]).collect(),
                        })
                    }
                    Stmt::Insert { table, .. }
                    | Stmt::Update { table, .. }
                    | Stmt::Delete { table, .. } => self.explain_dml(inner, table),
                    _ => Err(DmxError::Planning(
                        "EXPLAIN supports SELECT, INSERT, UPDATE and DELETE".into(),
                    )),
                }
            }
            Stmt::Insert { table, rows } => {
                self.check(table, Privilege::Insert)?;
                let rd = self.db.catalog().get_by_name(table)?;
                let funcs = self.db.services().funcs.read();
                let mut records = Vec::with_capacity(rows.len());
                for row in rows {
                    // VALUES are constant expressions
                    let binder = Binder { tables: Vec::new() };
                    let mut values = Vec::with_capacity(row.len());
                    for e in row {
                        let bound = binder.bind_expr(e)?;
                        values.push(eval(
                            &bound,
                            &dmx_expr::eval::NoFields,
                            dmx_expr::EvalContext::new(&funcs),
                        )?);
                    }
                    records.push(Record::new(values));
                }
                drop(funcs);
                let n = records.len();
                for r in records {
                    self.db.insert(txn, rd.id, r)?;
                }
                Ok(QueryResult::affected(n))
            }
            Stmt::Update {
                table,
                sets,
                where_,
            } => {
                self.check(table, Privilege::Update)?;
                let rd = self.db.catalog().get_by_name(table)?;
                let binder = Binder::new(
                    &self.db,
                    &[crate::ast::TableRef {
                        table: table.clone(),
                        alias: None,
                    }],
                )?;
                let pred = match where_ {
                    Some(w) => Some(binder.bind_expr(w)?),
                    None => None,
                };
                let assignments: Vec<(dmx_types::FieldId, dmx_expr::Expr)> = sets
                    .iter()
                    .map(|(col, e)| Ok((rd.schema.field_id(col)?, binder.bind_expr(e)?)))
                    .collect::<Result<_>>()?;
                // collect targets first (no Halloween problem), then apply
                let targets = self.collect_targets(txn, &rd, pred)?;
                let n = targets.len();
                let funcs = self.db.services().funcs.read();
                let new_rows: Vec<(dmx_types::RecordKey, Record)> = targets
                    .into_iter()
                    .map(|(key, mut row)| {
                        for (f, e) in &assignments {
                            let v = eval(e, &row, dmx_expr::EvalContext::new(&funcs))?;
                            row[*f as usize] = v;
                        }
                        Ok((key, Record::new(row)))
                    })
                    .collect::<Result<_>>()?;
                drop(funcs);
                for (key, rec) in new_rows {
                    self.db.update(txn, rd.id, &key, rec)?;
                }
                Ok(QueryResult::affected(n))
            }
            Stmt::Delete { table, where_ } => {
                self.check(table, Privilege::Delete)?;
                let rd = self.db.catalog().get_by_name(table)?;
                let binder = Binder::new(
                    &self.db,
                    &[crate::ast::TableRef {
                        table: table.clone(),
                        alias: None,
                    }],
                )?;
                let pred = match where_ {
                    Some(w) => Some(binder.bind_expr(w)?),
                    None => None,
                };
                let targets = self.collect_targets(txn, &rd, pred)?;
                let n = targets.len();
                for (key, _) in targets {
                    self.db.delete(txn, rd.id, &key)?;
                }
                Ok(QueryResult::affected(n))
            }
            Stmt::CreateTable {
                name,
                columns,
                using,
                with,
            } => {
                let cols = columns
                    .iter()
                    .map(|c| {
                        if c.not_null {
                            ColumnDef::not_null(&c.name, c.data_type)
                        } else {
                            ColumnDef::new(&c.name, c.data_type)
                        }
                    })
                    .collect();
                let schema = Schema::new(cols)?;
                let sm = using.as_deref().unwrap_or("heap");
                let rel = self.db.create_relation(txn, name, schema, sm, with)?;
                // the creator owns the relation
                self.db
                    .auth()
                    .grant("admin", &self.user, rel, Privilege::Control)?;
                Ok(QueryResult::empty())
            }
            Stmt::CreateIndex {
                name,
                table,
                using,
                columns,
                unique,
                with,
            } => {
                self.check(table, Privilege::Control)?;
                let ty = using.as_deref().unwrap_or("btree");
                let mut pairs: Vec<(String, String)> = with
                    .pairs()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                if with.get("fields").is_none() {
                    pairs.push(("fields".into(), columns.join(",")));
                }
                if *unique && with.get("unique").is_none() {
                    pairs.push(("unique".into(), "true".into()));
                }
                // the rtree takes a single `field`
                if ty.eq_ignore_ascii_case("rtree") && with.get("field").is_none() {
                    pairs.retain(|(k, _)| !k.eq_ignore_ascii_case("fields"));
                    pairs.push(("field".into(), columns.join(",")));
                }
                let params = AttrList::from_pairs(pairs)?;
                self.db.create_attachment(txn, table, ty, name, &params)?;
                Ok(QueryResult::empty())
            }
            Stmt::CreateAttachment {
                name,
                table,
                using,
                with,
            } => {
                self.check(table, Privilege::Control)?;
                self.db.create_attachment(txn, table, using, name, with)?;
                Ok(QueryResult::empty())
            }
            Stmt::CreateCheck {
                name,
                table,
                expr,
                deferred,
            } => {
                self.check(table, Privilege::Control)?;
                let binder = Binder::new(
                    &self.db,
                    &[crate::ast::TableRef {
                        table: table.clone(),
                        alias: None,
                    }],
                )?;
                let bound = binder.bind_expr(expr)?;
                let params = check_params(&bound, *deferred)?;
                self.db
                    .create_attachment(txn, table, "check", name, &params)?;
                Ok(QueryResult::empty())
            }
            Stmt::DropTable { name } => {
                self.check(name, Privilege::Control)?;
                self.db.drop_relation(txn, name)?;
                Ok(QueryResult::empty())
            }
            Stmt::DropAttachment { name, table } => {
                self.check(table, Privilege::Control)?;
                self.db.drop_attachment(txn, table, name)?;
                Ok(QueryResult::empty())
            }
            Stmt::Grant {
                privilege,
                table,
                user,
            } => {
                let rd = self.db.catalog().get_by_name(table)?;
                let p = Privilege::parse(privilege)?;
                self.db.auth().grant(&self.user, user, rd.id, p)?;
                Ok(QueryResult::empty())
            }
            Stmt::Revoke {
                privilege,
                table,
                user,
            } => {
                let rd = self.db.catalog().get_by_name(table)?;
                let p = Privilege::parse(privilege)?;
                self.db.auth().revoke(&self.user, user, rd.id, p)?;
                Ok(QueryResult::empty())
            }
            Stmt::AnalyzeTable { name } => {
                self.check(name, Privilege::Control)?;
                let rd = self.db.catalog().get_by_name(name)?;
                // First ANALYZE registers the statistics attachment as
                // an ordinary attachment (backfill seeds counts and
                // bounds); subsequent ones just rebuild exactly.
                let has_stats = rd.attached_types().any(|(att_id, _)| {
                    self.db
                        .registry()
                        .attachment(att_id)
                        .map(|a| a.name() == "stats")
                        .unwrap_or(false)
                });
                if !has_stats {
                    self.db
                        .create_attachment(txn, name, "stats", "stats", &AttrList::new())?;
                }
                let analyzed = self.db.analyze_relation(txn, name)?;
                let rows_now = self.db.catalog().get_by_name(name)?.stats.records();
                Ok(QueryResult {
                    columns: vec!["relation".into(), "analyzed".into(), "rows".into()],
                    rows: vec![vec![
                        Value::Str(name.clone()),
                        Value::Int(analyzed as i64),
                        Value::Int(rows_now as i64),
                    ]],
                })
            }
            Stmt::CheckTable { name } => {
                self.check(name, Privilege::Control)?;
                let report = dmx_core::scrub_relation(&self.db, txn, name)?;
                Ok(QueryResult {
                    columns: vec![
                        "relation".into(),
                        "pages_checked".into(),
                        "status".into(),
                        "damage".into(),
                    ],
                    rows: vec![vec![
                        Value::Str(report.name.clone()),
                        Value::Int(report.pages_checked as i64),
                        Value::from(if report.healthy() {
                            "healthy"
                        } else {
                            "quarantined"
                        }),
                        Value::Str(report.damage.join("; ")),
                    ]],
                })
            }
            Stmt::Begin
            | Stmt::Commit
            | Stmt::Rollback
            | Stmt::Savepoint(_)
            | Stmt::RollbackTo(_)
            | Stmt::Release(_)
            | Stmt::RepairTable { .. } => unreachable!("handled above"),
        }
    }

    /// `EXPLAIN` for DML: describes the modification pipeline — the
    /// target's storage method and every attachment instance the
    /// two-step dispatcher will invoke — without executing anything.
    fn explain_dml(&self, stmt: &Stmt, table: &str) -> Result<QueryResult> {
        let (verb, privilege) = match stmt {
            Stmt::Insert { .. } => ("Insert into", Privilege::Insert),
            Stmt::Update { .. } => ("Update", Privilege::Update),
            Stmt::Delete { .. } => ("Delete from", Privilege::Delete),
            _ => return Err(DmxError::Planning("EXPLAIN supports DML here".into())),
        };
        self.check(table, privilege)?;
        let rd = self.db.catalog().get_by_name(table)?;
        let sm_name = self
            .db
            .registry()
            .storage(rd.sm)
            .map(|sm| sm.name().to_string())
            .unwrap_or_else(|_| format!("unknown({})", rd.sm.0));
        let mut lines = vec![format!("{verb} {} via {sm_name}", rd.name)];
        if matches!(stmt, Stmt::Update { .. } | Stmt::Delete { .. }) {
            lines.push("  collect targets via storage-method scan".into());
        }
        let mut any = false;
        for (att_id, insts) in rd.attached_types() {
            let type_name = self
                .db
                .registry()
                .attachment(att_id)
                .map(|a| a.name().to_string())
                .unwrap_or_else(|_| format!("unknown({})", att_id.0));
            for inst in insts {
                any = true;
                lines.push(format!(
                    "  attachment {type_name} '{}' fires per record",
                    inst.name
                ));
            }
        }
        if !any {
            lines.push("  no attachments".into());
        }
        Ok(QueryResult {
            columns: vec!["plan".into()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        })
    }

    /// `EXPLAIN ANALYZE`: executes the plan with per-node row counters
    /// and reports estimated vs actual rows side by side. Base-table
    /// estimation error feeds the `planner.misestimate` histogram.
    fn explain_analyze(&self, txn: &Arc<Transaction>, inner: &Stmt) -> Result<QueryResult> {
        let Stmt::Select(sel) = inner else {
            return Err(DmxError::Planning("EXPLAIN ANALYZE supports SELECT".into()));
        };
        for t in &sel.from {
            self.check(&t.table, Privilege::Select)?;
        }
        let compiled = plan_select(&self.db, sel)?;
        let ctx = dmx_core::ExecCtx { db: &self.db, txn };
        let prev = txn.set_snapshot_reads(true);
        let analyzed = exec::run_analyzed(&compiled.plan, &ctx);
        txn.set_snapshot_reads(prev);
        let (_rows, actuals) = analyzed?;
        let hist = self.db.metrics().histogram(
            dmx_types::obs::name::PLANNER_MISESTIMATE,
            dmx_types::obs::SIZE_BUCKETS,
        );
        let mut rows = Vec::new();
        for (i, (line, est, is_access)) in compiled.plan.explain_rows().into_iter().enumerate() {
            let actual = actuals.get(i).copied().unwrap_or(0);
            if is_access {
                if let Some(e) = est {
                    hist.record((e - actual as f64).abs().round() as u64);
                }
            }
            rows.push(vec![
                Value::Str(line),
                match est {
                    Some(e) => Value::Int(e.round() as i64),
                    None => Value::Null,
                },
                Value::Int(actual as i64),
            ]);
        }
        Ok(QueryResult {
            columns: vec!["plan".into(), "estimated".into(), "actual".into()],
            rows,
        })
    }

    /// Collects `(record key, full row)` for every record matching `pred`
    /// (storage-method scan with the predicate pushed to the buffer
    /// pool).
    fn collect_targets(
        &self,
        txn: &Arc<Transaction>,
        rd: &Arc<dmx_core::RelationDescriptor>,
        pred: Option<dmx_expr::Expr>,
    ) -> Result<Vec<(dmx_types::RecordKey, Vec<Value>)>> {
        let scan = self.db.open_scan(
            txn,
            rd.id,
            dmx_core::AccessPath::StorageMethod,
            dmx_core::AccessQuery::All,
            pred,
            None,
        )?;
        let mut out = Vec::new();
        while let Some(item) = self.db.scan_next(txn, scan)? {
            out.push((
                item.key,
                item.values
                    .ok_or_else(|| DmxError::Internal("scan without values".into()))?,
            ));
        }
        self.db.scan_close(txn, scan);
        Ok(out)
    }
}

/// Autocommit SQL convenience on `Arc<Database>`. Explicit transaction
/// control needs a [`Session`].
pub trait SqlExt {
    /// Executes one statement with autocommit.
    fn execute_sql(&self, sql: &str) -> Result<QueryResult>;
    /// Executes a query and returns its rows.
    fn query_sql(&self, sql: &str) -> Result<Vec<Vec<Value>>>;
}

impl SqlExt for Arc<Database> {
    fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        if matches!(
            stmt,
            Stmt::Begin
                | Stmt::Commit
                | Stmt::Rollback
                | Stmt::Savepoint(_)
                | Stmt::RollbackTo(_)
                | Stmt::Release(_)
        ) {
            return Err(DmxError::TxnState(
                "transaction control requires a Session".into(),
            ));
        }
        Session::new(self.clone()).execute_stmt(sql, stmt)
    }

    fn query_sql(&self, sql: &str) -> Result<Vec<Vec<Value>>> {
        Ok(self.execute_sql(sql)?.rows)
    }
}
