//! Tokenizer for the mini SQL.

use dmx_types::{DmxError, Result};

/// Tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier / keyword (kept verbatim; keyword matching is
    /// case-insensitive).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// Punctuation / operators.
    Sym(&'static str),
}

impl Token {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Splits `input` into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                // string literal, '' escapes a quote
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DmxError::Parse("unterminated string".into())),
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && !saw_exp
                        && bytes
                            .get(i + 1)
                            .is_some_and(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                    {
                        saw_exp = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                // bounds: start <= i <= bytes.len() by the scan loop above.
                let text: String = bytes[start..i].iter().collect();
                if saw_dot || saw_exp {
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|_| DmxError::Parse(format!("bad number {text}")))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|_| DmxError::Parse(format!("bad number {text}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                // bounds: start <= i <= bytes.len() by the scan loop above.
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            _ => {
                // bounds: end is clamped to bytes.len().
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let sym = match two.as_str() {
                    "<=" | ">=" | "<>" | "!=" => {
                        i += 2;
                        match two.as_str() {
                            "<=" => "<=",
                            ">=" => ">=",
                            _ => "<>",
                        }
                    }
                    _ => {
                        i += 1;
                        match c {
                            '(' => "(",
                            ')' => ")",
                            ',' => ",",
                            ';' => ";",
                            '=' => "=",
                            '<' => "<",
                            '>' => ">",
                            '+' => "+",
                            '-' => "-",
                            '*' => "*",
                            '/' => "/",
                            '%' => "%",
                            '.' => ".",
                            other => {
                                return Err(DmxError::Parse(format!(
                                    "unexpected character '{other}'"
                                )))
                            }
                        }
                    }
                };
                out.push(Token::Sym(sym));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let t = tokenize("SELECT a.b, 'it''s' FROM t WHERE x <= 1.5e2 -- trailing").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t[0].is_kw("select"));
        assert_eq!(t[2], Token::Sym("."));
        assert_eq!(t[5], Token::Str("it's".into()));
        assert!(t.contains(&Token::Sym("<=")));
        assert!(t.contains(&Token::Float(150.0)));
        assert!(!t
            .iter()
            .any(|x| matches!(x, Token::Ident(s) if s == "trailing")));
    }

    #[test]
    fn numbers_and_negatives() {
        let t = tokenize("-5 3.25 .5 7").unwrap();
        // unary minus stays a symbol; the parser folds it
        assert_eq!(t[0], Token::Sym("-"));
        assert_eq!(t[1], Token::Int(5));
        assert_eq!(t[2], Token::Float(3.25));
        assert_eq!(t[3], Token::Float(0.5));
        assert_eq!(t[4], Token::Int(7));
    }

    #[test]
    fn inequality_spellings() {
        let t = tokenize("a <> b != c").unwrap();
        assert_eq!(
            t.iter().filter(|x| **x == Token::Sym("<>")).count(),
            2,
            "both spellings normalize"
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a ? b").is_err());
    }
}
