//! Plan construction: cost-based access-path selection and join strategy
//! choice.
//!
//! For every base table the planner hands the eligible predicates to the
//! storage method ("access path zero") and to each access-path attachment
//! instance; each returns a [`PathChoice`] with its estimated cost, and
//! the cheapest (plus the cost of fetching uncovered fields) wins. Joins
//! prefer a join index linking the two relations, then an index
//! nested-loop probe, then a plain nested loop.

use std::collections::BTreeSet;
use std::sync::Arc;

use dmx_core::{AccessPath, AccessQuery, Cost, Database, PathChoice, RelationDescriptor};
use dmx_expr::{analyze, CmpOp, Expr};
use dmx_types::{DmxError, FieldId, Result};

use crate::ast::{OrderTarget, SelectStmt, Stmt};
use crate::semantic::{AggKind, Binder, BoundItem, BoundTable};

/// Per-probe I/O estimate for an index nested-loop join.
const PROBE_COST: f64 = 3.0;

/// How an inner-join access builds its query from the outer row.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeKind {
    /// Encode the outer value and range-scan the index prefix.
    IndexPrefix,
    /// Encode the outer value as a hash probe.
    HashKey,
    /// Encode the outer value as the storage method's record-key prefix
    /// (B-tree-organized relations).
    SmKeyPrefix,
}

/// A parameterized probe: the inner access's query is built from one
/// outer-row value at execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// Offset of the join value in the *outer* (accumulated) row.
    pub outer_offset: usize,
    pub kind: ProbeKind,
}

/// One base-table access.
#[derive(Clone)]
pub struct AccessPlan {
    pub rd: Arc<RelationDescriptor>,
    pub path: AccessPath,
    pub query: AccessQuery,
    /// Predicate pushed into the storage method scan (local field ids).
    pub pushed: Option<Expr>,
    /// Predicate evaluated against the assembled row (local field ids);
    /// handed to the storage-method fetch so it runs in the buffer pool.
    pub residual: Option<Expr>,
    /// Fields the chosen path covers, when the plan can skip the
    /// storage-method fetch entirely.
    pub use_covered: Option<Vec<FieldId>>,
    pub probe: Option<ProbeSpec>,
    /// Estimated rows out (for join ordering decisions & EXPLAIN).
    pub rows_est: f64,
    /// Total estimated access cost including the uncovered-fetch
    /// surcharge (for join order / strategy decisions).
    pub cost_est: f64,
}

/// The physical plan.
pub enum Plan {
    Access(AccessPlan),
    NlJoin {
        left: Box<Plan>,
        /// Re-instantiated per outer row (may carry a probe).
        right: Box<Plan>,
        /// Cross-table predicate over the concatenated row.
        filter: Option<Expr>,
    },
    JoinIndexJoin {
        left: Arc<RelationDescriptor>,
        right: Arc<RelationDescriptor>,
        att: (dmx_types::AttTypeId, dmx_types::AttInstanceId),
        /// True when the pair's left key belongs to the FROM-order right
        /// table (the join index was created with sides swapped).
        swapped: bool,
        filter: Option<Expr>,
    },
    Filter {
        input: Box<Plan>,
        pred: Expr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<Expr>,
    },
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<Expr>,
        items: Vec<PlannedItem>,
    },
    Sort {
        input: Box<Plan>,
        /// (output column, descending)
        keys: Vec<(usize, bool)>,
    },
    Limit {
        input: Box<Plan>,
        n: u64,
    },
}

/// Output item in an aggregate plan.
pub enum PlannedItem {
    Scalar(Expr),
    Agg(AggKind, Option<Expr>),
}

/// A compiled SELECT: plan + output names + dependencies.
pub struct CompiledSelect {
    pub plan: Plan,
    pub columns: Vec<String>,
    pub deps: Vec<dmx_core::DepKey>,
}

/// Rewrites column offsets through `f`.
pub fn remap_columns(e: &Expr, f: &dyn Fn(FieldId) -> FieldId) -> Expr {
    match e {
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Column(c) => Expr::Column(f(*c)),
        Expr::Param(p) => Expr::Param(*p),
        Expr::Cmp(op, l, r) => Expr::Cmp(
            *op,
            Box::new(remap_columns(l, f)),
            Box::new(remap_columns(r, f)),
        ),
        Expr::And(v) => Expr::And(v.iter().map(|e| remap_columns(e, f)).collect()),
        Expr::Or(v) => Expr::Or(v.iter().map(|e| remap_columns(e, f)).collect()),
        Expr::Not(i) => Expr::Not(Box::new(remap_columns(i, f))),
        Expr::Arith(op, l, r) => Expr::Arith(
            *op,
            Box::new(remap_columns(l, f)),
            Box::new(remap_columns(r, f)),
        ),
        Expr::Neg(i) => Expr::Neg(Box::new(remap_columns(i, f))),
        Expr::IsNull(i, n) => Expr::IsNull(Box::new(remap_columns(i, f)), *n),
        Expr::Like(i, p) => Expr::Like(Box::new(remap_columns(i, f)), p.clone()),
        Expr::Encloses(l, r) => {
            Expr::Encloses(Box::new(remap_columns(l, f)), Box::new(remap_columns(r, f)))
        }
        Expr::Intersects(l, r) => {
            Expr::Intersects(Box::new(remap_columns(l, f)), Box::new(remap_columns(r, f)))
        }
        Expr::Func(n, args) => Expr::Func(
            n.clone(),
            args.iter().map(|e| remap_columns(e, f)).collect(),
        ),
    }
}

/// Which tables (by index into the binder) an expression references.
fn tables_of(e: &Expr, tables: &[BoundTable]) -> BTreeSet<usize> {
    let cols = analyze::columns(e);
    let mut out = BTreeSet::new();
    for c in cols {
        let c = c as usize;
        for (i, t) in tables.iter().enumerate() {
            if c >= t.offset && c < t.offset + t.rd.schema.len() {
                out.insert(i);
            }
        }
    }
    out
}

/// Chooses the cheapest access path for one table. `eligible` uses local
/// field ids; `needed_fields` is the full set of (local) fields the
/// query must read from this table, so covering-path decisions account
/// for projected columns, not just filtered ones. Returns the winning
/// choice, the residual predicates, and the total estimated cost
/// (access plus uncovered-fetch surcharge).
pub fn choose_path(
    db: &Arc<Database>,
    rd: &Arc<RelationDescriptor>,
    eligible: &[Expr],
    needed_fields: &BTreeSet<FieldId>,
) -> Result<(PathChoice, Vec<Expr>, f64)> {
    let sm = db.registry().storage(rd.sm)?;
    let mut best = sm.estimate(rd, eligible);
    let mut best_fetch = fetch_surcharge(&best, eligible, needed_fields);
    for (att_id, insts) in rd.attached_types() {
        let Ok(att) = db.registry().attachment(att_id) else {
            continue;
        };
        if !att.supports_access() {
            continue;
        }
        for inst in insts {
            if let Some(choice) = att.estimate(rd, inst, eligible) {
                let surcharge = fetch_surcharge(&choice, eligible, needed_fields);
                if choice.cost.total() + surcharge < best.cost.total() + best_fetch {
                    best = choice;
                    best_fetch = surcharge;
                }
            }
        }
    }
    // residual = eligible minus what the chosen path fully applies
    let residual: Vec<Expr> = eligible
        .iter()
        .filter(|p| !best.applied.contains(p))
        .cloned()
        .collect();
    let total = best.cost.total() + best_fetch;
    Ok((best, residual, total))
}

/// Extra cost of fetching records the path does not cover: a path must
/// supply every needed field (projection, grouping, filters) to skip the
/// per-row record fetch.
fn fetch_surcharge(
    choice: &PathChoice,
    eligible: &[Expr],
    needed_fields: &BTreeSet<FieldId>,
) -> f64 {
    match (&choice.path, &choice.covered) {
        (AccessPath::StorageMethod, _) => 0.0,
        (_, Some(covered)) => {
            let mut needed = needed_fields.clone();
            for e in eligible {
                needed.extend(analyze::columns(e));
            }
            if needed.iter().all(|c| covered.contains(c)) {
                // covering path: no record fetches at all
                0.0
            } else {
                // ~0.2 page transfers per fetched record: the buffer pool
                // absorbs most fetches once a table's hot pages are
                // resident, so charging full transfers would make a
                // selective index path lose to scanning a small table.
                choice.rows_out * 0.2
            }
        }
        _ => choice.rows_out * 0.2,
    }
}

/// Builds the access plan for one table given its local predicates and
/// the full set of fields the query needs from it.
fn plan_table(
    db: &Arc<Database>,
    rd: &Arc<RelationDescriptor>,
    local_preds: Vec<Expr>,
    needed_fields: &BTreeSet<FieldId>,
) -> Result<AccessPlan> {
    let (choice, residual, cost_est) = choose_path(db, rd, &local_preds, needed_fields)?;
    let residual_expr = combine(residual);
    let (pushed, use_covered) = match &choice.path {
        AccessPath::StorageMethod => (combine(local_preds.clone()), None),
        AccessPath::Attachment(_, _) => {
            let use_covered = match &choice.covered {
                Some(cov)
                    if needed_fields.iter().all(|f| cov.contains(f))
                        && residual_expr
                            .as_ref()
                            .map(|e| analyze::columns(e).iter().all(|c| cov.contains(c)))
                            .unwrap_or(true) =>
                {
                    Some(cov.clone())
                }
                _ => None,
            };
            (None, use_covered)
        }
    };
    Ok(AccessPlan {
        rd: rd.clone(),
        path: choice.path,
        query: choice.query,
        pushed,
        residual: residual_expr,
        use_covered,
        probe: None,
        rows_est: choice.rows_out,
        cost_est,
    })
}

fn combine(preds: Vec<Expr>) -> Option<Expr> {
    let mut it = preds.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| acc.and(p)))
}

/// Looks for a join-index pair linking `left`/`right` on `(lf, rf)`.
fn find_join_index(
    db: &Arc<Database>,
    left: &Arc<RelationDescriptor>,
    right: &Arc<RelationDescriptor>,
    lf: FieldId,
    rf: FieldId,
) -> Option<(dmx_types::AttTypeId, dmx_types::AttInstanceId, bool)> {
    let ji_type = db.registry().attachment_id_by_name("joinindex").ok()?;
    let l_insts = left.attachment_instances(ji_type)?;
    let r_insts = right.attachment_instances(ji_type)?;
    for li in l_insts {
        let ld = dmx_attach::join_index::JiDesc::decode(&li.desc).ok()?;
        if ld.fields != vec![lf] {
            continue;
        }
        for ri in r_insts {
            if ri.name != li.name {
                continue;
            }
            let rdsc = dmx_attach::join_index::JiDesc::decode(&ri.desc).ok()?;
            if rdsc.fields != vec![rf] || rdsc.trees != ld.trees {
                continue;
            }
            if ld.is_left && !rdsc.is_left {
                // pairs are (left-table key, right-table key)
                return Some((ji_type, li.instance, false));
            }
            if !ld.is_left && rdsc.is_left {
                return Some((ji_type, li.instance, true));
            }
        }
    }
    None
}

/// Looks for an index (or keyed storage method) on `rd.field` usable as
/// an inner probe target.
fn find_probe_path(
    db: &Arc<Database>,
    rd: &Arc<RelationDescriptor>,
    field: FieldId,
) -> Option<(AccessPath, ProbeKind, Option<Vec<FieldId>>)> {
    // btree index with this leading field
    if let Ok(t) = db.registry().attachment_id_by_name("btree") {
        if let Some(insts) = rd.attachment_instances(t) {
            for inst in insts {
                if let Ok(d) = dmx_attach::btree_index::IxDesc::decode(&inst.desc) {
                    if d.fields.first() == Some(&field) {
                        return Some((
                            AccessPath::Attachment(t, inst.instance),
                            ProbeKind::IndexPrefix,
                            Some(d.fields),
                        ));
                    }
                }
            }
        }
    }
    // hash index on exactly this field
    if let Ok(t) = db.registry().attachment_id_by_name("hash") {
        if let Some(insts) = rd.attachment_instances(t) {
            for inst in insts {
                if let Ok(d) = dmx_attach::hash_index::HashDesc::decode(&inst.desc) {
                    if d.fields == vec![field] {
                        return Some((
                            AccessPath::Attachment(t, inst.instance),
                            ProbeKind::HashKey,
                            Some(d.fields),
                        ));
                    }
                }
            }
        }
    }
    // B-tree-organized storage with this leading key field
    if let Ok(sm) = db.registry().storage(rd.sm) {
        if sm.name() == "btree" {
            if let Ok(d) = dmx_attach::btree_index::IxDesc::decode(&rd.sm_desc) {
                let _ = d; // descriptor formats differ; use scan_ordering
            }
            if let Some(ord) = sm.scan_ordering(rd) {
                if ord.first() == Some(&field) {
                    return Some((AccessPath::StorageMethod, ProbeKind::SmKeyPrefix, None));
                }
            }
        }
    }
    None
}

/// Compiles a SELECT into a physical plan.
pub fn plan_select(db: &Arc<Database>, sel: &SelectStmt) -> Result<CompiledSelect> {
    if sel.from.is_empty() {
        return Err(DmxError::Planning("FROM clause required".into()));
    }
    let binder = Binder::new(db, &sel.from)?;
    let items = binder.bind_items(&sel.items)?;
    let where_bound = match &sel.where_ {
        Some(w) => Some(binder.bind_expr(w)?),
        None => None,
    };
    let group_by: Vec<Expr> = sel
        .group_by
        .iter()
        .map(|g| binder.bind_expr(g))
        .collect::<Result<_>>()?;

    // classify conjuncts
    let conjuncts: Vec<Expr> = where_bound
        .as_ref()
        .map(|w| analyze::conjuncts(w).into_iter().cloned().collect())
        .unwrap_or_default();
    let n = binder.tables.len();
    let mut per_table: Vec<Vec<Expr>> = vec![Vec::new(); n];
    let mut cross: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let ts = tables_of(&c, &binder.tables);
        let mut it = ts.iter();
        if let (Some(&i), None) = (it.next(), it.next()) {
            let off = binder.tables[i].offset;
            per_table[i].push(remap_columns(&c, &|f| f - off as FieldId));
        } else {
            cross.push(c);
        }
    }

    // fields each table must supply (projection + filters + grouping)
    let mut needed_global: BTreeSet<FieldId> = BTreeSet::new();
    for item in &items {
        match item {
            BoundItem::Scalar(e, _) => needed_global.extend(analyze::columns(e)),
            BoundItem::Agg(_, Some(e), _) => needed_global.extend(analyze::columns(e)),
            BoundItem::Agg(_, None, _) => {}
        }
    }
    for e in group_by.iter().chain(cross.iter()) {
        needed_global.extend(analyze::columns(e));
    }
    let needed_local = |i: usize| -> BTreeSet<FieldId> {
        let t = &binder.tables[i];
        let mut out: BTreeSet<FieldId> = needed_global
            .iter()
            .filter(|&&c| (c as usize) >= t.offset && (c as usize) < t.offset + t.rd.schema.len())
            .map(|&c| c - t.offset as FieldId)
            .collect();
        for p in &per_table[i] {
            out.extend(analyze::columns(p));
        }
        out
    };

    // deps: every referenced relation
    let mut deps: Vec<dmx_core::DepKey> = binder
        .tables
        .iter()
        .map(|t| dmx_core::DepKey::Relation(t.rd.id))
        .collect();

    // Build the join tree left-deep. Default is FROM order; with two
    // tables and *published statistics* the estimator may flip the
    // outer/inner roles (without statistics the guesses reproduce the
    // historical FROM-order plan exactly).
    let mut order: Vec<usize> = (0..n).collect();
    if n == 2
        && binder
            .tables
            .iter()
            .any(|t| t.rd.stats.table_stats().is_some())
    {
        // Probe availability per direction, and whether a join index
        // links the FROM-order pair (a join index always wins, so the
        // order must not be rotated away from it).
        let mut probe_into = [false; 2];
        let mut has_join_index = false;
        for c in &cross {
            if let Expr::Cmp(CmpOp::Eq, l, r) = c {
                if let (Expr::Column(a), Expr::Column(b)) = (l.as_ref(), r.as_ref()) {
                    let ta = table_of_col(*a, &binder.tables);
                    let tb = table_of_col(*b, &binder.tables);
                    if let (Some(ta), Some(tb)) = (ta, tb) {
                        if ta == tb {
                            continue;
                        }
                        let fa = *a - binder.tables[ta].offset as FieldId;
                        let fb = *b - binder.tables[tb].offset as FieldId;
                        probe_into[tb] |= find_probe_path(db, &binder.tables[tb].rd, fb).is_some();
                        probe_into[ta] |= find_probe_path(db, &binder.tables[ta].rd, fa).is_some();
                        let (f0, f1) = if ta == 0 { (fa, fb) } else { (fb, fa) };
                        has_join_index |=
                            find_join_index(db, &binder.tables[0].rd, &binder.tables[1].rd, f0, f1)
                                .is_some();
                    }
                }
            }
        }
        if !has_join_index {
            let ap0 = plan_table(
                db,
                &binder.tables[0].rd,
                per_table[0].clone(),
                &needed_local(0),
            )?;
            let ap1 = plan_table(
                db,
                &binder.tables[1].rd,
                per_table[1].clone(),
                &needed_local(1),
            )?;
            let nl_cost = |outer: &AccessPlan, inner: &AccessPlan, probe: bool| {
                outer.cost_est
                    + outer.rows_est.max(0.0) * if probe { PROBE_COST } else { inner.cost_est }
            };
            if nl_cost(&ap1, &ap0, probe_into[0]) < nl_cost(&ap0, &ap1, probe_into[1]) {
                order = vec![1, 0];
            }
        }
    }

    // Physical row layout under the chosen order; a trailing Project
    // restores FROM-order layout when the two differ.
    let mut phys_offset = vec![0usize; n];
    {
        let mut acc = 0usize;
        for &ti in &order {
            phys_offset[ti] = acc;
            acc += binder.tables[ti].rd.schema.len();
        }
    }
    let to_phys = |c: FieldId| -> FieldId {
        match table_of_col(c, &binder.tables) {
            Some(t) => (phys_offset[t] + (c as usize - binder.tables[t].offset)) as FieldId,
            None => c,
        }
    };

    let first = order[0];
    let mut plan = Plan::Access(plan_table(
        db,
        &binder.tables[first].rd,
        per_table[first].clone(),
        &needed_local(first),
    )?);
    let mut joined: Vec<usize> = vec![first];
    for &ti in order.iter().skip(1) {
        let t = &binder.tables[ti];
        // find an equi-join conjunct between the joined set and table ti
        let mut equi: Option<(usize, FieldId, FieldId, Expr)> = None;
        for c in &cross {
            if let Expr::Cmp(CmpOp::Eq, l, r) = c {
                if let (Expr::Column(a), Expr::Column(b)) = (l.as_ref(), r.as_ref()) {
                    let ta = table_of_col(*a, &binder.tables);
                    let tb = table_of_col(*b, &binder.tables);
                    if let (Some(ta), Some(tb)) = (ta, tb) {
                        if joined.contains(&ta) && tb == ti {
                            equi = Some((
                                ta,
                                *a - binder.tables[ta].offset as FieldId,
                                *b - binder.tables[tb].offset as FieldId,
                                c.clone(),
                            ));
                            break;
                        }
                        if joined.contains(&tb) && ta == ti {
                            equi = Some((
                                tb,
                                *b - binder.tables[tb].offset as FieldId,
                                *a - binder.tables[ta].offset as FieldId,
                                c.clone(),
                            ));
                            break;
                        }
                    }
                }
            }
        }
        let mut inner = plan_table(db, &t.rd, per_table[ti].clone(), &needed_local(ti))?;
        let mut used_join_index = false;
        if let Some((outer_t, outer_f, inner_f, ref cond)) = equi {
            // join index? (only for plain 2-table joins in FROM order)
            if n == 2 && joined.len() == 1 && first == 0 && outer_t == 0 {
                if let Some((att, inst, swapped)) =
                    find_join_index(db, &binder.tables[0].rd, &t.rd, outer_f, inner_f)
                {
                    let rest: Vec<Expr> = cross.iter().filter(|c| *c != cond).cloned().collect();
                    // single-table predicates still apply after assembly
                    let mut extra: Vec<Expr> = rest;
                    for (pi, preds) in per_table.iter().enumerate() {
                        let off = binder.tables[pi].offset as FieldId;
                        for p in preds {
                            extra.push(remap_columns(p, &|f| f + off));
                        }
                    }
                    plan = Plan::JoinIndexJoin {
                        left: binder.tables[0].rd.clone(),
                        right: t.rd.clone(),
                        att: (att, inst),
                        swapped,
                        filter: combine(extra),
                    };
                    deps.push(dmx_core::DepKey::Attachment(
                        binder.tables[0].rd.id,
                        att,
                        inst,
                    ));
                    cross.clear();
                    joined.push(ti);
                    used_join_index = true;
                }
            }
            if !used_join_index {
                // Index nested loop? Published statistics may reveal an
                // inner relation so small that per-row probes lose to
                // re-scanning it (the probe guess wins otherwise).
                let probe_path = find_probe_path(db, &t.rd, inner_f);
                let probe_pays = t.rd.stats.table_stats().is_none() || inner.cost_est > PROBE_COST;
                if let (Some((path, kind, _covered)), true) = (probe_path, probe_pays) {
                    inner.path = path;
                    inner.probe = Some(ProbeSpec {
                        outer_offset: phys_offset[outer_t] + outer_f as usize,
                        kind,
                    });
                    inner.use_covered = None; // probe rows fetch the record
                    if let AccessPath::Attachment(a, ii) = inner.path {
                        deps.push(dmx_core::DepKey::Attachment(t.rd.id, a, ii));
                    }
                    // probing applies the equi-join condition
                    cross.retain(|c| c != cond);
                }
            }
        }
        if !used_join_index {
            // remaining cross conjuncts that now have all tables available
            joined.push(ti);
            let avail: BTreeSet<usize> = joined.iter().copied().collect();
            let (now, later): (Vec<Expr>, Vec<Expr>) = cross
                .iter()
                .cloned()
                .partition(|c| tables_of(c, &binder.tables).is_subset(&avail));
            cross = later;
            plan = Plan::NlJoin {
                left: Box::new(plan),
                right: Box::new(Plan::Access(inner)),
                // join filters run over the *physical* row layout
                filter: combine(now).map(|f| remap_columns(&f, &to_phys)),
            };
        }
    }
    // restore FROM-order column layout when the join was reordered
    if order.windows(2).any(|w| w[0] > w[1]) {
        let exprs = binder
            .tables
            .iter()
            .flat_map(|t| {
                (0..t.rd.schema.len())
                    .map(|local| Expr::Column(to_phys((t.offset + local) as FieldId)))
            })
            .collect();
        plan = Plan::Project {
            input: Box::new(plan),
            exprs,
        };
    }
    if let Some(f) = combine(cross) {
        plan = Plan::Filter {
            input: Box::new(plan),
            pred: f,
        };
    }

    // register access-path dependencies of the single-table plan
    if let Plan::Access(ap) = &plan {
        if let AccessPath::Attachment(a, i) = ap.path {
            deps.push(dmx_core::DepKey::Attachment(ap.rd.id, a, i));
        }
    }

    // aggregation / projection
    let has_agg = items.iter().any(|i| matches!(i, BoundItem::Agg(_, _, _)));
    let columns: Vec<String> = items
        .iter()
        .map(|i| match i {
            BoundItem::Scalar(_, n) | BoundItem::Agg(_, _, n) => n.clone(),
        })
        .collect();
    if has_agg || !group_by.is_empty() {
        let planned = items
            .into_iter()
            .map(|i| match i {
                BoundItem::Scalar(e, _) => PlannedItem::Scalar(e),
                BoundItem::Agg(k, e, _) => PlannedItem::Agg(k, e),
            })
            .collect();
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_by,
            items: planned,
        };
    } else {
        let exprs = items
            .into_iter()
            .map(|i| match i {
                BoundItem::Scalar(e, _) => e,
                BoundItem::Agg(_, _, _) => unreachable!(),
            })
            .collect();
        plan = Plan::Project {
            input: Box::new(plan),
            exprs,
        };
    }

    // order by output columns
    if !sel.order_by.is_empty() {
        let mut keys = Vec::new();
        for k in &sel.order_by {
            let idx = match &k.column {
                OrderTarget::Position(p) => {
                    if *p == 0 || *p > columns.len() {
                        return Err(DmxError::Planning(format!(
                            "ORDER BY position {p} out of range"
                        )));
                    }
                    p - 1
                }
                OrderTarget::Name(n) => columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(n))
                    .ok_or_else(|| DmxError::Planning(format!("ORDER BY unknown column {n}")))?,
            };
            keys.push((idx, k.desc));
        }
        plan = Plan::Sort {
            input: Box::new(plan),
            keys,
        };
    }
    if let Some(nrows) = sel.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n: nrows,
        };
    }
    Ok(CompiledSelect {
        plan,
        columns,
        deps,
    })
}

fn table_of_col(col: FieldId, tables: &[BoundTable]) -> Option<usize> {
    let c = col as usize;
    tables
        .iter()
        .position(|t| c >= t.offset && c < t.offset + t.rd.schema.len())
}

impl Plan {
    /// One-line description of this node (no indentation).
    fn node_line(&self) -> String {
        match self {
            Plan::Access(a) => {
                let path = match a.path {
                    AccessPath::StorageMethod => "storage-method".to_string(),
                    AccessPath::Attachment(t, i) => format!("attachment {t}{i}"),
                };
                let probe = match &a.probe {
                    Some(p) => format!(", probe from outer col {}", p.outer_offset),
                    None => String::new(),
                };
                let cov = if a.use_covered.is_some() {
                    ", covered"
                } else {
                    ""
                };
                format!(
                    "Access {} via {path} (~{:.0} rows{probe}{cov})",
                    a.rd.name, a.rows_est
                )
            }
            Plan::NlJoin { filter, .. } => format!(
                "NestedLoopJoin{}",
                if filter.is_some() { " (filtered)" } else { "" }
            ),
            Plan::JoinIndexJoin { left, right, .. } => format!(
                "JoinIndexJoin {} ⋈ {} (precomputed pairs)",
                left.name, right.name
            ),
            Plan::Filter { .. } => "Filter".to_string(),
            Plan::Project { exprs, .. } => format!("Project ({} cols)", exprs.len()),
            Plan::Aggregate {
                group_by, items, ..
            } => format!(
                "Aggregate ({} groups keys, {} items)",
                group_by.len(),
                items.len()
            ),
            Plan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
            Plan::Limit { n, .. } => format!("Limit {n}"),
        }
    }

    /// Child plans, in description order. `JoinIndexJoin` reads both
    /// relations through the pair scan and has no child plans.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Access(_) | Plan::JoinIndexJoin { .. } => Vec::new(),
            Plan::NlJoin { left, right, .. } => vec![left, right],
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => vec![input],
        }
    }

    /// Renders the plan for EXPLAIN.
    pub fn describe(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        out.push_str(&self.node_line());
        out.push('\n');
        for c in self.children() {
            c.describe(indent + 1, out);
        }
    }

    /// Per-node EXPLAIN ANALYZE metadata in pre-order (the same order
    /// [`exec::PlanProfile`](crate::exec::PlanProfile) numbers its
    /// counters): the indented description, the planner's estimated rows
    /// out where it has one, and whether the node is a base-table access
    /// (those feed the `planner.misestimate` histogram).
    pub fn explain_rows(&self) -> Vec<(String, Option<f64>, bool)> {
        fn walk(p: &Plan, indent: usize, out: &mut Vec<(String, Option<f64>, bool)>) {
            let est = match p {
                Plan::Access(a) => Some(a.rows_est),
                Plan::Limit { n, .. } => Some(*n as f64),
                _ => None,
            };
            out.push((
                format!("{}{}", "  ".repeat(indent), p.node_line()),
                est,
                matches!(p, Plan::Access(_)),
            ));
            for c in p.children() {
                walk(c, indent + 1, out);
            }
        }
        let mut out = Vec::new();
        walk(self, 0, &mut out);
        out
    }
}

/// Cost helper shared with benches: total estimated cost of a choice.
pub fn choice_total(c: &PathChoice) -> f64 {
    c.cost.total()
}

/// Statement classification helper used by the session layer.
pub fn is_query(stmt: &Stmt) -> bool {
    matches!(stmt, Stmt::Select(_) | Stmt::Explain(..))
}

/// Re-exported so benches can build ad-hoc costs.
pub fn cost(io: f64, cpu: f64) -> Cost {
    Cost::new(io, cpu)
}
