//! The query layer.
//!
//! The paper's query planning and processing portions "do not require
//! special data management extension facilities because the mechanisms
//! employed … are general enough": plans are built against the *generic*
//! access interface (access path zero = storage method), access paths are
//! chosen by asking each extension's cost-estimation operation, and bound
//! plans embed relation descriptors so execution touches no catalogs.
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a mini SQL with the paper's DDL
//!   extension (`… USING <extension> WITH (attr = value, …)`);
//! * [`semantic`] — name resolution into `dmx_expr::Expr` over joined-row
//!   field offsets;
//! * [`planner`] — access-path selection via [`dmx_core::PathChoice`]
//!   comparison, join strategy choice (join index / index nested loop /
//!   nested loop);
//! * [`exec`] — tuple-at-a-time operators;
//! * [`bind`] — the bound-plan cache: compiled statements are cached with
//!   their dependencies registered in the core's
//!   [`dmx_core::DependencyRegistry`]; invalidated plans are re-translated
//!   automatically on next execution;
//! * [`session`] — [`Session`] (explicit transactions, users) and the
//!   [`SqlExt`] convenience trait (`db.execute_sql(…)`, autocommit).

pub mod ast;
pub mod bind;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod semantic;
pub mod session;

pub use bind::PlanCache;
pub use session::{QueryResult, Session, SqlExt};
