//! Statement AST produced by the parser.

use dmx_types::{AttrList, DataType, Value};

/// Unresolved expressions (names, not field offsets).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Lit(Value),
    /// `name` or `qualifier.name`.
    Column(Option<String>, String),
    Cmp(dmx_expr::CmpOp, Box<AstExpr>, Box<AstExpr>),
    And(Vec<AstExpr>),
    Or(Vec<AstExpr>),
    Not(Box<AstExpr>),
    Arith(dmx_expr::BinOp, Box<AstExpr>, Box<AstExpr>),
    Neg(Box<AstExpr>),
    IsNull(Box<AstExpr>, bool),
    Like(Box<AstExpr>, String),
    Encloses(Box<AstExpr>, Box<AstExpr>),
    Intersects(Box<AstExpr>, Box<AstExpr>),
    /// Function call — may be a scalar function or an aggregate
    /// (COUNT/SUM/AVG/MIN/MAX), disambiguated by the binder.
    Func(String, Vec<AstExpr>),
    /// `COUNT(*)`.
    CountStar,
}

/// One SELECT output item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// expression with optional alias
    Expr(AstExpr, Option<String>),
}

/// A table in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

/// ORDER BY key: output column by name or 1-based position.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub column: OrderTarget,
    pub desc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    Name(String),
    Position(usize),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// Parsed statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        name: String,
        columns: Vec<ColDef>,
        /// storage method (`USING …`); defaults to `heap`
        using: Option<String>,
        with: AttrList,
    },
    /// `CREATE [UNIQUE] INDEX name ON table [USING ext] (cols…) [WITH …]`
    CreateIndex {
        name: String,
        table: String,
        using: Option<String>,
        columns: Vec<String>,
        unique: bool,
        with: AttrList,
    },
    /// Generic attachment DDL:
    /// `CREATE ATTACHMENT name ON table USING ext [WITH …]`.
    CreateAttachment {
        name: String,
        table: String,
        using: String,
        with: AttrList,
    },
    /// `CREATE CONSTRAINT name ON table CHECK (expr) [DEFERRED]`
    CreateCheck {
        name: String,
        table: String,
        expr: AstExpr,
        deferred: bool,
    },
    DropTable {
        name: String,
    },
    /// `DROP ATTACHMENT name ON table` (also `DROP INDEX …`).
    DropAttachment {
        name: String,
        table: String,
    },
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
    Update {
        table: String,
        sets: Vec<(String, AstExpr)>,
        where_: Option<AstExpr>,
    },
    Delete {
        table: String,
        where_: Option<AstExpr>,
    },
    Select(SelectStmt),
    Begin,
    Commit,
    Rollback,
    Savepoint(String),
    RollbackTo(String),
    Release(String),
    Grant {
        privilege: String,
        table: String,
        user: String,
    },
    Revoke {
        privilege: String,
        table: String,
        user: String,
    },
    /// `EXPLAIN [ANALYZE] <stmt>`; the flag selects the executing form
    /// that reports per-node actual row counts.
    Explain(Box<Stmt>, bool),
    /// `CHECK TABLE t` — run the online integrity scrubber over one
    /// relation; damage quarantines it proactively.
    CheckTable {
        name: String,
    },
    /// `REPAIR TABLE t` — drive the automatic repair pipeline: rebuild
    /// damaged attachments from the base, or salvage a damaged base,
    /// verify, and lift the quarantine.
    RepairTable {
        name: String,
    },
    /// `ANALYZE TABLE t` — (re)build maintained statistics from a full
    /// scan, registering a statistics attachment first if the relation
    /// has none.
    AnalyzeTable {
        name: String,
    },
}
