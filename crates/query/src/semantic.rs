//! Name resolution: AST expressions → `dmx_expr::Expr` over the offsets
//! of the (possibly joined) input row.
//!
//! Join rows are the concatenation of the base tables' full records in
//! FROM order; a column of table `i` at field `f` lives at global offset
//! `tables[i].offset + f`.

use std::sync::Arc;

use dmx_core::{Database, RelationDescriptor};
use dmx_expr::Expr;
use dmx_types::{DmxError, FieldId, Rect, Result, Value};

use crate::ast::{AstExpr, SelectItem};

/// One FROM entry with its offset into the joined row.
#[derive(Clone)]
pub struct BoundTable {
    pub rd: Arc<RelationDescriptor>,
    pub alias: String,
    pub offset: usize,
}

/// Resolves names against a FROM list.
pub struct Binder {
    pub tables: Vec<BoundTable>,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggKind {
    fn parse(name: &str) -> Option<AggKind> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggKind::Count),
            "SUM" => Some(AggKind::Sum),
            "AVG" => Some(AggKind::Avg),
            "MIN" => Some(AggKind::Min),
            "MAX" => Some(AggKind::Max),
            _ => None,
        }
    }
}

/// A bound output item.
pub enum BoundItem {
    Scalar(Expr, String),
    Agg(AggKind, Option<Expr>, String),
}

impl Binder {
    /// Builds a binder over the FROM list.
    pub fn new(db: &Arc<Database>, from: &[crate::ast::TableRef]) -> Result<Binder> {
        let mut tables = Vec::new();
        let mut offset = 0usize;
        for tr in from {
            let rd = db.catalog().get_by_name(&tr.table)?;
            let alias = tr.alias.clone().unwrap_or_else(|| tr.table.clone());
            if tables
                .iter()
                .any(|t: &BoundTable| t.alias.eq_ignore_ascii_case(&alias))
            {
                return Err(DmxError::Planning(format!("duplicate table alias {alias}")));
            }
            let w = rd.schema.len();
            tables.push(BoundTable { rd, alias, offset });
            offset += w;
        }
        Ok(Binder { tables })
    }

    /// Total width of the joined row.
    pub fn width(&self) -> usize {
        self.tables
            .last()
            .map(|t| t.offset + t.rd.schema.len())
            .unwrap_or(0)
    }

    /// Resolves a column reference to `(table index, field, global
    /// offset)`.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, FieldId, usize)> {
        let mut hit = None;
        for (i, t) in self.tables.iter().enumerate() {
            if let Some(q) = qualifier {
                if !t.alias.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Ok(f) = t.rd.schema.field_id(name) {
                if hit.is_some() {
                    return Err(DmxError::Planning(format!("ambiguous column {name}")));
                }
                hit = Some((i, f, t.offset + f as usize));
            }
        }
        hit.ok_or_else(|| {
            DmxError::Planning(match qualifier {
                Some(q) => format!("unknown column {q}.{name}"),
                None => format!("unknown column {name}"),
            })
        })
    }

    /// Binds a scalar expression (aggregates are rejected here).
    pub fn bind_expr(&self, ast: &AstExpr) -> Result<Expr> {
        Ok(match ast {
            AstExpr::Lit(v) => Expr::Const(v.clone()),
            AstExpr::Column(q, n) => {
                let (_, _, off) = self.resolve(q.as_deref(), n)?;
                Expr::Column(off as FieldId)
            }
            AstExpr::Cmp(op, l, r) => Expr::Cmp(
                *op,
                Box::new(self.bind_expr(l)?),
                Box::new(self.bind_expr(r)?),
            ),
            AstExpr::And(v) => {
                Expr::And(v.iter().map(|e| self.bind_expr(e)).collect::<Result<_>>()?)
            }
            AstExpr::Or(v) => Expr::Or(v.iter().map(|e| self.bind_expr(e)).collect::<Result<_>>()?),
            AstExpr::Not(e) => Expr::Not(Box::new(self.bind_expr(e)?)),
            AstExpr::Arith(op, l, r) => Expr::Arith(
                *op,
                Box::new(self.bind_expr(l)?),
                Box::new(self.bind_expr(r)?),
            ),
            AstExpr::Neg(e) => Expr::Neg(Box::new(self.bind_expr(e)?)),
            AstExpr::IsNull(e, n) => Expr::IsNull(Box::new(self.bind_expr(e)?), *n),
            AstExpr::Like(e, p) => Expr::Like(Box::new(self.bind_expr(e)?), p.clone()),
            AstExpr::Encloses(l, r) => {
                Expr::Encloses(Box::new(self.bind_expr(l)?), Box::new(self.bind_expr(r)?))
            }
            AstExpr::Intersects(l, r) => {
                Expr::Intersects(Box::new(self.bind_expr(l)?), Box::new(self.bind_expr(r)?))
            }
            AstExpr::Func(name, args) => {
                if name.eq_ignore_ascii_case("RECT") {
                    return bind_rect(self, args);
                }
                if AggKind::parse(name).is_some() {
                    return Err(DmxError::Planning(format!(
                        "aggregate {name} not allowed here"
                    )));
                }
                Expr::Func(
                    name.clone(),
                    args.iter()
                        .map(|a| self.bind_expr(a))
                        .collect::<Result<_>>()?,
                )
            }
            AstExpr::CountStar => {
                return Err(DmxError::Planning("COUNT(*) not allowed here".into()))
            }
        })
    }

    /// Binds SELECT items, expanding `*` and splitting aggregates from
    /// scalars.
    pub fn bind_items(&self, items: &[SelectItem]) -> Result<Vec<BoundItem>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::Star => {
                    for t in &self.tables {
                        for (f, col) in t.rd.schema.columns().iter().enumerate() {
                            out.push(BoundItem::Scalar(
                                Expr::Column((t.offset + f) as FieldId),
                                col.name.clone(),
                            ));
                        }
                    }
                }
                SelectItem::Expr(e, alias) => {
                    let name = alias.clone().unwrap_or_else(|| display_name(e));
                    match e {
                        AstExpr::CountStar => {
                            out.push(BoundItem::Agg(AggKind::CountStar, None, name))
                        }
                        AstExpr::Func(f, args) if AggKind::parse(f).is_some() => {
                            let Some(kind) = AggKind::parse(f) else {
                                // Guard above ensures the parse succeeds.
                                out.push(BoundItem::Scalar(self.bind_expr(e)?, name));
                                continue;
                            };
                            if args.len() != 1 {
                                return Err(DmxError::Planning(format!(
                                    "{f} takes exactly one argument"
                                )));
                            }
                            out.push(BoundItem::Agg(kind, Some(self.bind_expr(&args[0])?), name));
                        }
                        _ => out.push(BoundItem::Scalar(self.bind_expr(e)?, name)),
                    }
                }
            }
        }
        Ok(out)
    }
}

fn bind_rect(b: &Binder, args: &[AstExpr]) -> Result<Expr> {
    if args.len() != 4 {
        return Err(DmxError::Planning("RECT takes 4 arguments".into()));
    }
    let mut vals = [0f64; 4];
    let mut all_const = true;
    let mut bound = Vec::with_capacity(4);
    for (i, a) in args.iter().enumerate() {
        let e = b.bind_expr(a)?;
        if let Expr::Const(v) = &e {
            vals[i] = v.as_float()?;
        } else {
            all_const = false;
        }
        bound.push(e);
    }
    if all_const {
        Ok(Expr::Const(Value::Rect(Rect::new(
            vals[0], vals[1], vals[2], vals[3],
        ))))
    } else {
        Err(DmxError::Planning(
            "RECT arguments must be constants".into(),
        ))
    }
}

fn display_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column(_, n) => n.clone(),
        AstExpr::CountStar => "count".to_string(),
        AstExpr::Func(f, _) => f.to_ascii_lowercase(),
        _ => "expr".to_string(),
    }
}
