//! Tuple-at-a-time plan execution.
//!
//! Every base-table access goes through the unified access interface:
//! open a key-sequential access on the chosen path (path zero = storage
//! method), then — for access paths that don't cover the query — fetch
//! each record from the storage method by its record key ("first the
//! access path is accessed to obtain a record key, which is then used to
//! access the relation record in the storage method").

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use dmx_core::{AccessPath, AccessQuery, ExecCtx, KeyRange, RelationDescriptor, ScanItem};
use dmx_expr::{eval, eval_predicate, EvalContext, Expr};
use dmx_types::{key::encode_values, DmxError, RecordKey, Result, ScanId, Value};

use crate::planner::{AccessPlan, Plan, PlannedItem, ProbeKind};
use crate::semantic::AggKind;

/// A stream of rows.
pub trait RowSource {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>>;
}

/// Per-plan-node row counters for EXPLAIN ANALYZE. Counters are numbered
/// in the same pre-order as [`Plan::explain_rows`] and keyed by node
/// identity, so inner plans re-instantiated per outer row (nested-loop
/// right sides) accumulate into one counter.
pub struct PlanProfile {
    index: HashMap<usize, usize>,
    counters: Vec<AtomicU64>,
}

impl PlanProfile {
    /// Builds a profile with one counter per node of `plan`.
    pub fn new(plan: &Plan) -> PlanProfile {
        fn walk(p: &Plan, index: &mut HashMap<usize, usize>) {
            let i = index.len();
            index.insert(p as *const Plan as usize, i);
            for c in p.children() {
                walk(c, index);
            }
        }
        let mut index = HashMap::new();
        walk(plan, &mut index);
        let counters = (0..index.len()).map(|_| AtomicU64::new(0)).collect();
        PlanProfile { index, counters }
    }

    fn counter(&self, node: &Plan) -> Option<&AtomicU64> {
        self.index
            .get(&(node as *const Plan as usize))
            .and_then(|i| self.counters.get(*i))
    }

    /// Rows produced by each node, in pre-order.
    pub fn actuals(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Counts the rows a node hands to its parent.
struct Profiled<'p> {
    inner: Box<dyn RowSource + 'p>,
    rows_out: &'p AtomicU64,
}

impl RowSource for Profiled<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        let r = self.inner.next(ctx)?;
        if r.is_some() {
            self.rows_out.fetch_add(1, Ordering::Relaxed);
        }
        Ok(r)
    }
}

/// Instantiates a plan subtree. `outer` supplies the accumulated outer
/// row for probe-parameterized inner accesses.
pub fn build<'p>(
    plan: &'p Plan,
    ctx: &ExecCtx<'_>,
    outer: Option<&[Value]>,
) -> Result<Box<dyn RowSource + 'p>> {
    build_profiled(plan, ctx, outer, None)
}

fn build_profiled<'p>(
    plan: &'p Plan,
    ctx: &ExecCtx<'_>,
    outer: Option<&[Value]>,
    profile: Option<&'p PlanProfile>,
) -> Result<Box<dyn RowSource + 'p>> {
    let src: Box<dyn RowSource + 'p> = match plan {
        Plan::Access(a) => Box::new(AccessOp::open(a, ctx, outer)?),
        Plan::NlJoin {
            left,
            right,
            filter,
        } => Box::new(NlJoinOp {
            left: build_profiled(left, ctx, outer, profile)?,
            right_plan: right,
            filter: filter.as_ref(),
            cur_left: None,
            right: None,
            profile,
        }),
        Plan::JoinIndexJoin {
            left,
            right,
            att,
            swapped,
            filter,
        } => Box::new(JoinIndexJoinOp::open(
            ctx,
            left,
            right,
            *att,
            *swapped,
            filter.as_ref(),
        )?),
        Plan::Filter { input, pred } => Box::new(FilterOp {
            input: build_profiled(input, ctx, outer, profile)?,
            pred,
        }),
        Plan::Project { input, exprs } => Box::new(ProjectOp {
            input: build_profiled(input, ctx, outer, profile)?,
            exprs,
        }),
        Plan::Aggregate {
            input,
            group_by,
            items,
        } => Box::new(AggOp {
            input: Some(build_profiled(input, ctx, outer, profile)?),
            group_by,
            items,
            out: Vec::new(),
            pos: 0,
            done: false,
        }),
        Plan::Sort { input, keys } => Box::new(SortOp {
            input: Some(build_profiled(input, ctx, outer, profile)?),
            keys,
            out: Vec::new(),
            pos: 0,
            done: false,
        }),
        Plan::Limit { input, n } => Box::new(LimitOp {
            input: build_profiled(input, ctx, outer, profile)?,
            left: *n,
        }),
    };
    Ok(match profile.and_then(|p| p.counter(plan)) {
        Some(c) => Box::new(Profiled {
            inner: src,
            rows_out: c,
        }),
        None => src,
    })
}

/// Drains a plan into materialized rows.
pub fn run_to_rows(plan: &Plan, ctx: &ExecCtx<'_>) -> Result<Vec<Vec<Value>>> {
    let mut src = build(plan, ctx, None)?;
    let mut rows = Vec::new();
    while let Some(r) = src.next(ctx)? {
        rows.push(r);
    }
    Ok(rows)
}

/// Drains a plan into materialized rows while counting the rows each
/// node produced. Returns the rows and the per-node actual row counts in
/// the pre-order of [`Plan::explain_rows`].
pub fn run_analyzed(plan: &Plan, ctx: &ExecCtx<'_>) -> Result<(Vec<Vec<Value>>, Vec<u64>)> {
    let profile = PlanProfile::new(plan);
    let mut rows = Vec::new();
    {
        let mut src = build_profiled(plan, ctx, None, Some(&profile))?;
        while let Some(r) = src.next(ctx)? {
            rows.push(r);
        }
    }
    Ok((rows, profile.actuals()))
}

fn eval_scalar(ctx: &ExecCtx<'_>, e: &Expr, row: &[Value]) -> Result<Value> {
    let funcs = ctx.services().funcs.read();
    eval(e, &row, EvalContext::new(&funcs))
}

fn eval_pred(ctx: &ExecCtx<'_>, e: &Expr, row: &[Value]) -> Result<bool> {
    let funcs = ctx.services().funcs.read();
    eval_predicate(e, &row, EvalContext::new(&funcs))
}

// ----------------------------------------------------------------------

struct AccessOp<'p> {
    plan: &'p AccessPlan,
    scan: ScanId,
    width: usize,
}

impl<'p> AccessOp<'p> {
    fn open(plan: &'p AccessPlan, ctx: &ExecCtx<'_>, outer: Option<&[Value]>) -> Result<Self> {
        let query = match &plan.probe {
            None => plan.query.clone(),
            Some(p) => {
                let outer_row = outer.ok_or_else(|| {
                    DmxError::Internal("probe access opened without outer row".into())
                })?;
                let v = outer_row
                    .get(p.outer_offset)
                    .cloned()
                    .ok_or_else(|| DmxError::Internal("probe offset out of range".into()))?;
                if v.is_null() {
                    // NULL joins nothing: an empty probe
                    AccessQuery::Range(KeyRange {
                        lo: std::ops::Bound::Excluded(vec![0xFF; 24]),
                        hi: std::ops::Bound::Excluded(vec![0xFF; 24]),
                    })
                } else {
                    let enc = encode_values(std::slice::from_ref(&v));
                    match p.kind {
                        ProbeKind::HashKey => AccessQuery::KeyEquals(enc),
                        ProbeKind::IndexPrefix | ProbeKind::SmKeyPrefix => {
                            let hi = match dmx_attach::common::prefix_successor(&enc) {
                                Some(s) => std::ops::Bound::Excluded(s),
                                None => std::ops::Bound::Unbounded,
                            };
                            AccessQuery::Range(KeyRange {
                                lo: std::ops::Bound::Included(enc),
                                hi,
                            })
                        }
                    }
                }
            }
        };
        let scan = ctx.db.open_scan(
            ctx.txn,
            plan.rd.id,
            plan.path,
            query,
            plan.pushed.clone(),
            None,
        )?;
        Ok(AccessOp {
            plan,
            scan,
            width: plan.rd.schema.len(),
        })
    }

    fn assemble(&self, ctx: &ExecCtx<'_>, item: ScanItem) -> Result<Option<Vec<Value>>> {
        if let Some(cov) = &self.plan.use_covered {
            // covering path: build the row from the access-path key alone
            let mut row = vec![Value::Null; self.width];
            if let Some(values) = item.values {
                for (v, f) in values.into_iter().zip(cov) {
                    row[*f as usize] = v;
                }
            }
            if let Some(res) = &self.plan.residual {
                if !eval_pred(ctx, res, &row)? {
                    return Ok(None);
                }
            }
            return Ok(Some(row));
        }
        match self.plan.path {
            AccessPath::StorageMethod => {
                // full row; the storage method already applied the pushed
                // predicate in the buffer pool
                let mut row = item
                    .values
                    .ok_or_else(|| DmxError::Internal("storage scan without fields".into()))?;
                if let Some(res) = &self.plan.residual {
                    if !eval_pred(ctx, res, &row)? {
                        return Ok(None);
                    }
                }
                row.truncate(self.width);
                Ok(Some(row))
            }
            AccessPath::Attachment(_, _) => {
                // two-step access: record key from the path, record from
                // the storage method (residual filtered in the pool)
                ctx.db.fetch(
                    ctx.txn,
                    self.plan.rd.id,
                    &item.key,
                    None,
                    self.plan.residual.as_ref(),
                )
            }
        }
    }
}

impl RowSource for AccessOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        loop {
            let Some(item) = ctx.db.scan_next(ctx.txn, self.scan)? else {
                ctx.db.scan_close(ctx.txn, self.scan);
                return Ok(None);
            };
            if let Some(row) = self.assemble(ctx, item)? {
                return Ok(Some(row));
            }
        }
    }
}

// ----------------------------------------------------------------------

struct NlJoinOp<'p> {
    left: Box<dyn RowSource + 'p>,
    right_plan: &'p Plan,
    filter: Option<&'p Expr>,
    cur_left: Option<Vec<Value>>,
    right: Option<Box<dyn RowSource + 'p>>,
    profile: Option<&'p PlanProfile>,
}

impl RowSource for NlJoinOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        loop {
            if self.right.is_none() {
                let Some(lrow) = self.left.next(ctx)? else {
                    return Ok(None);
                };
                self.right = Some(build_profiled(
                    self.right_plan,
                    ctx,
                    Some(&lrow),
                    self.profile,
                )?);
                self.cur_left = Some(lrow);
            }
            let Some(right) = self.right.as_mut() else {
                // Just assigned above; looping rebuilds it for the next
                // left row.
                continue;
            };
            let rrow = right.next(ctx)?;
            match rrow {
                None => {
                    self.right = None;
                    self.cur_left = None;
                }
                Some(r) => {
                    let Some(mut row) = self.cur_left.clone() else {
                        // `cur_left` is set together with `right`; if it is
                        // gone, restart from the next left row.
                        self.right = None;
                        continue;
                    };
                    row.extend(r);
                    if let Some(f) = self.filter {
                        if !eval_pred(ctx, f, &row)? {
                            continue;
                        }
                    }
                    return Ok(Some(row));
                }
            }
        }
    }
}

// ----------------------------------------------------------------------

struct JoinIndexJoinOp<'p> {
    left: &'p RelationDescriptor,
    right: &'p RelationDescriptor,
    swapped: bool,
    filter: Option<&'p Expr>,
    scan: ScanId,
}

impl<'p> JoinIndexJoinOp<'p> {
    fn open(
        ctx: &ExecCtx<'_>,
        left: &'p RelationDescriptor,
        right: &'p RelationDescriptor,
        att: (dmx_types::AttTypeId, dmx_types::AttInstanceId),
        swapped: bool,
        filter: Option<&'p Expr>,
    ) -> Result<Self> {
        // the pair scan lives on whichever relation carries the instance
        // we planned with (the FROM-left one)
        let scan = ctx.db.open_scan(
            ctx.txn,
            left.id,
            AccessPath::Attachment(att.0, att.1),
            AccessQuery::All,
            None,
            None,
        )?;
        Ok(JoinIndexJoinOp {
            left,
            right,
            swapped,
            filter,
            scan,
        })
    }
}

impl RowSource for JoinIndexJoinOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        loop {
            let Some(item) = ctx.db.scan_next(ctx.txn, self.scan)? else {
                ctx.db.scan_close(ctx.txn, self.scan);
                return Ok(None);
            };
            let pair_right = match item.values.as_ref().and_then(|v| v.first()) {
                Some(Value::Bytes(b)) => RecordKey::new(b.clone()),
                _ => return Err(DmxError::Internal("join index pair shape".into())),
            };
            // pair = (join-index-left key, join-index-right key); map onto
            // FROM-order tables
            let (lkey, rkey) = if self.swapped {
                (pair_right, item.key)
            } else {
                (item.key, pair_right)
            };
            let Some(lrow) = ctx.db.fetch(ctx.txn, self.left.id, &lkey, None, None)? else {
                continue;
            };
            let Some(rrow) = ctx.db.fetch(ctx.txn, self.right.id, &rkey, None, None)? else {
                continue;
            };
            let mut row = lrow;
            row.extend(rrow);
            if let Some(f) = self.filter {
                if !eval_pred(ctx, f, &row)? {
                    continue;
                }
            }
            return Ok(Some(row));
        }
    }
}

// ----------------------------------------------------------------------

struct FilterOp<'p> {
    input: Box<dyn RowSource + 'p>,
    pred: &'p Expr,
}

impl RowSource for FilterOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        while let Some(row) = self.input.next(ctx)? {
            if eval_pred(ctx, self.pred, &row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectOp<'p> {
    input: Box<dyn RowSource + 'p>,
    exprs: &'p [Expr],
}

impl RowSource for ProjectOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        let Some(row) = self.input.next(ctx)? else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(self.exprs.len());
        for e in self.exprs {
            out.push(eval_scalar(ctx, e, &row)?);
        }
        Ok(Some(out))
    }
}

struct LimitOp<'p> {
    input: Box<dyn RowSource + 'p>,
    left: u64,
}

impl RowSource for LimitOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if self.left == 0 {
            return Ok(None);
        }
        match self.input.next(ctx)? {
            Some(r) => {
                self.left -= 1;
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }
}

struct SortOp<'p> {
    input: Option<Box<dyn RowSource + 'p>>,
    keys: &'p [(usize, bool)],
    out: Vec<Vec<Value>>,
    pos: usize,
    done: bool,
}

impl RowSource for SortOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if !self.done {
            let Some(mut input) = self.input.take() else {
                self.done = true;
                return Ok(None);
            };
            while let Some(r) = input.next(ctx)? {
                self.out.push(r);
            }
            let keys = self.keys;
            self.out.sort_by(|a, b| {
                for (idx, desc) in keys {
                    let ord = a[*idx].total_cmp(&b[*idx]);
                    if ord != std::cmp::Ordering::Equal {
                        return if *desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.done = true;
        }
        if self.pos >= self.out.len() {
            return Ok(None);
        }
        self.pos += 1;
        Ok(Some(self.out[self.pos - 1].clone()))
    }
}

// ----------------------------------------------------------------------

struct AggState {
    representative: Vec<Value>,
    count: u64,
    per_item: Vec<ItemAcc>,
}

enum ItemAcc {
    Scalar,
    Count(u64),
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        seen: bool,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Avg {
        sum: f64,
        n: u64,
    },
}

struct AggOp<'p> {
    input: Option<Box<dyn RowSource + 'p>>,
    group_by: &'p [Expr],
    items: &'p [PlannedItem],
    out: Vec<Vec<Value>>,
    pos: usize,
    done: bool,
}

impl AggOp<'_> {
    fn make_accs(items: &[PlannedItem]) -> Vec<ItemAcc> {
        items
            .iter()
            .map(|i| match i {
                PlannedItem::Scalar(_) => ItemAcc::Scalar,
                PlannedItem::Agg(AggKind::Count | AggKind::CountStar, _) => ItemAcc::Count(0),
                PlannedItem::Agg(AggKind::Sum, _) => ItemAcc::Sum {
                    int: 0,
                    float: 0.0,
                    any_float: false,
                    seen: false,
                },
                PlannedItem::Agg(AggKind::Min, _) => ItemAcc::MinMax {
                    best: None,
                    is_min: true,
                },
                PlannedItem::Agg(AggKind::Max, _) => ItemAcc::MinMax {
                    best: None,
                    is_min: false,
                },
                PlannedItem::Agg(AggKind::Avg, _) => ItemAcc::Avg { sum: 0.0, n: 0 },
            })
            .collect()
    }

    fn accumulate(&self, ctx: &ExecCtx<'_>, st: &mut AggState, row: &[Value]) -> Result<()> {
        st.count += 1;
        for (acc, item) in st.per_item.iter_mut().zip(self.items) {
            let arg = match item {
                PlannedItem::Agg(_, Some(e)) => Some(eval_scalar(ctx, e, row)?),
                _ => None,
            };
            match (acc, item) {
                (ItemAcc::Scalar, _) => {}
                (ItemAcc::Count(n), PlannedItem::Agg(AggKind::CountStar, _)) => *n += 1,
                (ItemAcc::Count(n), _) => {
                    if !arg.as_ref().map(|v| v.is_null()).unwrap_or(true) {
                        *n += 1;
                    }
                }
                (
                    ItemAcc::Sum {
                        int,
                        float,
                        any_float,
                        seen,
                    },
                    _,
                ) => match arg {
                    Some(Value::Int(i)) => {
                        *int += i;
                        *float += i as f64;
                        *seen = true;
                    }
                    Some(Value::Float(x)) => {
                        *float += x;
                        *any_float = true;
                        *seen = true;
                    }
                    Some(Value::Null) | None => {}
                    Some(other) => return Err(DmxError::TypeMismatch(format!("SUM({other})"))),
                },
                (ItemAcc::MinMax { best, is_min }, _) => {
                    if let Some(v) = arg {
                        if !v.is_null() {
                            let replace = match best {
                                None => true,
                                Some(b) => {
                                    let ord = v.total_cmp(b);
                                    if *is_min {
                                        ord == std::cmp::Ordering::Less
                                    } else {
                                        ord == std::cmp::Ordering::Greater
                                    }
                                }
                            };
                            if replace {
                                *best = Some(v);
                            }
                        }
                    }
                }
                (ItemAcc::Avg { sum, n }, _) => {
                    if let Some(v) = arg {
                        if !v.is_null() {
                            *sum += v.as_float()?;
                            *n += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self, ctx: &ExecCtx<'_>, st: AggState) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(self.items.len());
        for (acc, item) in st.per_item.into_iter().zip(self.items) {
            out.push(match (acc, item) {
                (ItemAcc::Scalar, PlannedItem::Scalar(e)) => {
                    if st.representative.is_empty() {
                        Value::Null
                    } else {
                        eval_scalar(ctx, e, &st.representative)?
                    }
                }
                (ItemAcc::Count(n), _) => Value::Int(n as i64),
                (
                    ItemAcc::Sum {
                        int,
                        float,
                        any_float,
                        seen,
                    },
                    _,
                ) => {
                    if !seen {
                        Value::Null
                    } else if any_float {
                        Value::Float(float)
                    } else {
                        Value::Int(int)
                    }
                }
                (ItemAcc::MinMax { best, .. }, _) => best.unwrap_or(Value::Null),
                (ItemAcc::Avg { sum, n }, _) => {
                    if n == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum / n as f64)
                    }
                }
                (ItemAcc::Scalar, _) => unreachable!(),
            });
        }
        Ok(out)
    }
}

impl RowSource for AggOp<'_> {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if !self.done {
            let Some(mut input) = self.input.take() else {
                self.done = true;
                return Ok(None);
            };
            let mut groups: BTreeMap<Vec<u8>, AggState> = BTreeMap::new();
            while let Some(row) = input.next(ctx)? {
                let mut key_vals = Vec::with_capacity(self.group_by.len());
                for g in self.group_by {
                    key_vals.push(eval_scalar(ctx, g, &row)?);
                }
                let key = encode_values(&key_vals);
                let st = groups.entry(key).or_insert_with(|| AggState {
                    representative: row.clone(),
                    count: 0,
                    per_item: Self::make_accs(self.items),
                });
                self.accumulate(ctx, st, &row)?;
            }
            if groups.is_empty() && self.group_by.is_empty() {
                // aggregates over an empty input yield one row
                groups.insert(
                    Vec::new(),
                    AggState {
                        representative: Vec::new(),
                        count: 0,
                        per_item: Self::make_accs(self.items),
                    },
                );
            }
            for (_, st) in groups {
                let row = self.finish(ctx, st)?;
                self.out.push(row);
            }
            self.done = true;
        }
        if self.pos >= self.out.len() {
            return Ok(None);
        }
        self.pos += 1;
        Ok(Some(self.out[self.pos - 1].clone()))
    }
}
