//! The bound-plan cache.
//!
//! "It is important to retain the translations of queries into query
//! execution plans … and to use the saved query execution plans whenever
//! the queries are subsequently executed. This query binding approach
//! avoids the non-trivial costs of accessing the relation descriptions
//! and optimizing the query at query execution time." Compiled plans
//! embed `Arc<RelationDescriptor>` snapshots (no catalog access at run
//! time) and register their dependencies with the core's
//! [`dmx_core::DependencyRegistry`]; a plan invalidated by DDL is
//! re-translated automatically on its next invocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dmx_types::sync::Mutex;

use dmx_core::{Database, PlanId};
use dmx_types::obs::{name as metric, Counter};
use dmx_types::Result;

use crate::ast::SelectStmt;
use crate::planner::{plan_select, CompiledSelect};

struct Cached {
    plan_id: PlanId,
    compiled: Arc<CompiledSelect>,
}

/// Cache statistics (experiment E4 reports these).
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub retranslations: AtomicU64,
}

/// SQL-text-keyed cache of compiled SELECT plans.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<String, Cached>>,
    pub stats: CacheStats,
    /// Registry mirrors of hits/misses, resolved once from the first
    /// database this cache serves (there is one cache per database).
    registry_counters: OnceLock<(Arc<Counter>, Arc<Counter>)>,
}

impl PlanCache {
    fn registry_counters(&self, db: &Arc<Database>) -> &(Arc<Counter>, Arc<Counter>) {
        self.registry_counters.get_or_init(|| {
            (
                db.metrics().counter(metric::PLAN_CACHE_HITS),
                db.metrics().counter(metric::PLAN_CACHE_MISSES),
            )
        })
    }

    /// Returns the cached plan for `sql` when still valid; otherwise
    /// (re-)compiles, registers dependencies, caches and returns it.
    pub fn get_or_compile(
        &self,
        db: &Arc<Database>,
        sql: &str,
        sel: &SelectStmt,
    ) -> Result<Arc<CompiledSelect>> {
        let (reg_hits, reg_misses) = self.registry_counters(db);
        let (reg_hits, reg_misses) = (reg_hits.clone(), reg_misses.clone());
        {
            let plans = self.plans.lock();
            if let Some(c) = plans.get(sql) {
                if db.deps().is_valid(c.plan_id) {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    reg_hits.incr();
                    return Ok(c.compiled.clone());
                }
            }
        }
        // invalid or absent: (re-)translate
        let compiled = Arc::new(plan_select(db, sel)?);
        let plan_id = db.deps().register_plan(compiled.deps.clone());
        let mut plans = self.plans.lock();
        if let Some(old) = plans.insert(
            sql.to_string(),
            Cached {
                plan_id,
                compiled: compiled.clone(),
            },
        ) {
            db.deps().forget_plan(old.plan_id);
            self.stats.retranslations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        // Both fresh compiles and retranslations are registry misses:
        // either way a plan was compiled at execution time.
        reg_misses.incr();
        Ok(compiled)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows for `sys.plan_cache`: `(sql, valid)` per cached plan, sorted
    /// by SQL text for a deterministic presentation.
    pub fn dump(&self, db: &Database) -> Vec<Vec<dmx_types::Value>> {
        use dmx_types::Value;
        let plans = self.plans.lock();
        let mut rows: Vec<Vec<Value>> = plans
            .iter()
            .map(|(sql, c)| {
                vec![
                    Value::Str(sql.clone()),
                    Value::Bool(db.deps().is_valid(c.plan_id)),
                ]
            })
            .collect();
        rows.sort_by(|a, b| match (a.first(), b.first()) {
            (Some(Value::Str(x)), Some(Value::Str(y))) => x.cmp(y),
            _ => std::cmp::Ordering::Equal,
        });
        rows
    }

    /// Drops every cached plan (tests/benches).
    pub fn clear(&self, db: &Arc<Database>) {
        let mut plans = self.plans.lock();
        for (_, c) in plans.drain() {
            db.deps().forget_plan(c.plan_id);
        }
    }
}
