//! Integration tests for every attachment type, driven through the core
//! dispatcher — including the paper's Figure 1 configuration (EMPLOYEE
//! relation: heap storage method + B-tree index instances + intra-record
//! consistency constraint).

// Integration-test harnesses are exempt from the runtime panic
// discipline: a broken fixture should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dmx_attach::{check_params, register_builtin_attachments};
use dmx_core::{
    AccessPath, AccessQuery, Database, DatabaseConfig, DatabaseEnv, ExtensionRegistry, SpatialOp,
};
use dmx_expr::{CmpOp, Expr};
use dmx_storage::register_builtin_storage;
use dmx_types::{
    AttrList, ColumnDef, DataType, DmxError, Record, RecordKey, Rect, RelationId, Schema, Value,
};

fn registry() -> Arc<ExtensionRegistry> {
    let reg = ExtensionRegistry::new();
    register_builtin_storage(&reg).unwrap();
    register_builtin_attachments(&reg).unwrap();
    reg
}

fn open_db() -> Arc<Database> {
    Database::open_fresh(registry()).unwrap()
}

fn emp_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::not_null("name", DataType::Str),
        ColumnDef::new("dept", DataType::Int),
        ColumnDef::new("salary", DataType::Float),
    ])
    .unwrap()
}

fn emp(id: i64, name: &str, dept: i64, salary: f64) -> Record {
    Record::new(vec![
        Value::Int(id),
        Value::from(name),
        Value::Int(dept),
        Value::Float(salary),
    ])
}

fn create_emp(db: &Arc<Database>) -> RelationId {
    db.with_txn(|txn| db.create_relation(txn, "employee", emp_schema(), "heap", &AttrList::new()))
        .unwrap()
}

fn scan_all_ids(db: &Arc<Database>, rel: RelationId, path: AccessPath) -> Vec<i64> {
    db.with_txn(|txn| {
        let scan = db.open_scan(txn, rel, path, AccessQuery::All, None, None)?;
        let mut out = Vec::new();
        while let Some(item) = db.scan_next(txn, scan)? {
            // values[0] is id for both heap rows and id-indexed paths
            out.push(item.values.unwrap()[0].as_int()?);
        }
        Ok(out)
    })
    .unwrap()
}

/// Figure 1: the EMPLOYEE relation uses the heap storage method and has
/// B-tree and intra-record consistency constraint attachments.
#[test]
fn figure1_employee_configuration() {
    let db = open_db();
    let rel = create_emp(&db);
    // salary must be positive — the intra-record constraint
    let positive_salary = Expr::Or(vec![
        Expr::IsNull(Box::new(Expr::Column(3)), false),
        Expr::cmp_col(CmpOp::Gt, 3, 0.0f64),
    ]);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "btree",
            "emp_id_idx",
            &AttrList::parse("fields=id, unique=true").unwrap(),
        )?;
        db.create_attachment(
            txn,
            "employee",
            "check",
            "salary_positive",
            &check_params(&positive_salary, false).unwrap(),
        )
    })
    .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    assert_eq!(rd.attachment_count(), 2);
    let (idx_type, idx_inst) = rd.find_attachment("emp_id_idx").unwrap();
    let idx_path = AccessPath::Attachment(idx_type, idx_inst.instance);

    // inserts flow through storage method + both attachments
    db.with_txn(|txn| {
        for i in [3i64, 1, 2] {
            db.insert(txn, rel, emp(i, &format!("e{i}"), 1, 100.0 * i as f64))?;
        }
        Ok(())
    })
    .unwrap();

    // keyed access via the index: ids come back in key order
    assert_eq!(scan_all_ids(&db, rel, idx_path), vec![1, 2, 3]);

    // duplicate id → unique index vetoes; constraint violation → check
    // vetoes; both leave relation AND index consistent
    db.with_txn(|txn| {
        assert!(matches!(
            db.insert(txn, rel, emp(1, "dup", 1, 50.0)),
            Err(DmxError::Veto { .. })
        ));
        assert!(matches!(
            db.insert(txn, rel, emp(9, "broke", 1, -5.0)),
            Err(DmxError::Veto { .. })
        ));
        Ok(())
    })
    .unwrap();
    assert_eq!(scan_all_ids(&db, rel, idx_path), vec![1, 2, 3]);
    assert_eq!(
        scan_all_ids(&db, rel, AccessPath::StorageMethod).len(),
        3,
        "vetoed records absent from the relation too"
    );
}

#[test]
fn index_backfill_on_existing_records_and_drop() {
    let db = open_db();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        for i in 0..200 {
            db.insert(txn, rel, emp(i, "x", i % 7, 1.0))?;
        }
        Ok(())
    })
    .unwrap();
    // creating the index on a populated relation backfills it
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "btree",
            "by_id",
            &AttrList::parse("fields=id").unwrap(),
        )
    })
    .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, i) = rd.find_attachment("by_id").unwrap();
    let ids = scan_all_ids(&db, rel, AccessPath::Attachment(t, i.instance));
    assert_eq!(ids, (0..200).collect::<Vec<_>>());

    // dropping the index removes it from the descriptor
    db.with_txn(|txn| db.drop_attachment(txn, "employee", "by_id"))
        .unwrap();
    assert!(db
        .catalog()
        .get(rel)
        .unwrap()
        .find_attachment("by_id")
        .is_none());
}

#[test]
fn unique_backfill_failure_rolls_everything_back() {
    let db = open_db();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        db.insert(txn, rel, emp(1, "a", 1, 1.0))?;
        db.insert(txn, rel, emp(1, "b", 1, 1.0))?; // duplicate id, no index yet
        Ok(())
    })
    .unwrap();
    // unique index creation must fail during backfill and leave no trace
    let err = db
        .with_txn(|txn| {
            db.create_attachment(
                txn,
                "employee",
                "btree",
                "uniq_id",
                &AttrList::parse("fields=id, unique=true").unwrap(),
            )
        })
        .unwrap_err();
    assert!(matches!(err, DmxError::Veto { .. }));
    assert!(db
        .catalog()
        .get(rel)
        .unwrap()
        .find_attachment("uniq_id")
        .is_none());
}

#[test]
fn index_stays_consistent_across_update_delete_abort() {
    let db = open_db();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "btree",
            "by_id",
            &AttrList::parse("fields=id").unwrap(),
        )
    })
    .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, i) = rd.find_attachment("by_id").unwrap();
    let path = AccessPath::Attachment(t, i.instance);

    let keys: Vec<RecordKey> = db
        .with_txn(|txn| {
            (0..10)
                .map(|i| db.insert(txn, rel, emp(i, "x", 0, 1.0)))
                .collect()
        })
        .unwrap();
    // update key field → index moves the entry
    db.with_txn(|txn| {
        db.update(txn, rel, &keys[0], emp(100, "x", 0, 1.0))?;
        db.delete(txn, rel, &keys[1])?;
        Ok(())
    })
    .unwrap();
    assert_eq!(
        scan_all_ids(&db, rel, path),
        vec![2, 3, 4, 5, 6, 7, 8, 9, 100]
    );
    // aborted changes disappear from the index too
    let txn = db.begin();
    db.insert(&txn, rel, emp(55, "ghost", 0, 1.0)).unwrap();
    db.update(&txn, rel, &keys[2], emp(200, "moved", 0, 1.0))
        .unwrap();
    db.abort(&txn).unwrap();
    assert_eq!(
        scan_all_ids(&db, rel, path),
        vec![2, 3, 4, 5, 6, 7, 8, 9, 100]
    );
}

#[test]
fn index_range_scan_with_query() {
    let db = open_db();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "btree",
            "by_id",
            &AttrList::parse("fields=id").unwrap(),
        )?;
        for i in 0..50 {
            db.insert(txn, rel, emp(i, "x", 0, 1.0))?;
        }
        Ok(())
    })
    .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("by_id").unwrap();
    // estimate produces the range query for `id = 7`
    let att = db.registry().attachment(t).unwrap();
    let preds = [Expr::col_eq(0, 7i64)];
    let choice = att.estimate(&rd, inst, &preds).expect("index is relevant");
    assert!(choice.cost.total() < 10.0, "keyed access is cheap");
    let ids = db
        .with_txn(|txn| {
            let scan = db.open_scan(
                txn,
                rel,
                AccessPath::Attachment(t, inst.instance),
                choice.query.clone(),
                None,
                None,
            )?;
            let mut out = Vec::new();
            while let Some(item) = db.scan_next(txn, scan)? {
                out.push(item.values.unwrap()[0].as_int()?);
            }
            Ok(out)
        })
        .unwrap();
    assert_eq!(ids, vec![7]);
    // and an irrelevant predicate makes the index decline
    assert!(att.estimate(&rd, inst, &[Expr::col_eq(1, "bob")]).is_none());
}

#[test]
fn hash_index_probes_equality_only() {
    let db = open_db();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "hash",
            "h_name",
            &AttrList::parse("fields=name").unwrap(),
        )?;
        for i in 0..30 {
            db.insert(txn, rel, emp(i, &format!("n{}", i % 10), 0, 1.0))?;
        }
        Ok(())
    })
    .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("h_name").unwrap();
    let att = db.registry().attachment(t).unwrap();
    // equality is recognized …
    let choice = att
        .estimate(&rd, inst, &[Expr::col_eq(1, "n3")])
        .expect("hash handles equality");
    // … ranges are not
    assert!(att
        .estimate(&rd, inst, &[Expr::cmp_col(CmpOp::Gt, 1, "n3")])
        .is_none());
    let hits = db
        .with_txn(|txn| {
            let scan = db.open_scan(
                txn,
                rel,
                AccessPath::Attachment(t, inst.instance),
                choice.query.clone(),
                None,
                None,
            )?;
            let mut n = 0;
            while db.scan_next(txn, scan)?.is_some() {
                n += 1;
            }
            Ok(n)
        })
        .unwrap();
    assert_eq!(hits, 3, "ids 3, 13, 23");
}

// ---------------------------------------------------------------------
// R-tree
// ---------------------------------------------------------------------

fn spatial_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::new("area", DataType::Rect),
    ])
    .unwrap()
}

fn parcel(id: i64, r: Rect) -> Record {
    Record::new(vec![Value::Int(id), Value::Rect(r)])
}

#[test]
fn rtree_spatial_queries_match_brute_force() {
    let db = open_db();
    let rel = db
        .with_txn(|txn| {
            db.create_relation(txn, "parcels", spatial_schema(), "heap", &AttrList::new())
        })
        .unwrap();
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "parcels",
            "rtree",
            "parcels_rt",
            &AttrList::parse("field=area").unwrap(),
        )
    })
    .unwrap();
    // deterministic pseudo-random rectangles
    let mut rects = Vec::new();
    let mut seed = 12345u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) % 1000) as f64
    };
    db.with_txn(|txn| {
        for i in 0..800i64 {
            let (x, y) = (next(), next());
            let (w, h) = (next() % 50.0 + 1.0, next() % 50.0 + 1.0);
            let r = Rect::new(x, y, x + w, y + h);
            rects.push(r);
            db.insert(txn, rel, parcel(i, r))?;
        }
        Ok(())
    })
    .unwrap();

    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("parcels_rt").unwrap();
    let path = AccessPath::Attachment(t, inst.instance);

    let run = |op: SpatialOp, q: Rect| -> Vec<i64> {
        db.with_txn(|txn| {
            let scan = db.open_scan(txn, rel, path, AccessQuery::Spatial(op, q), None, None)?;
            let mut out = Vec::new();
            while let Some(item) = db.scan_next(txn, scan)? {
                // fetch id via the record key (access path → storage method)
                let row = db.fetch(txn, rel, &item.key, Some(&[0]), None)?.unwrap();
                out.push(row[0].as_int()?);
            }
            out.sort_unstable();
            Ok(out)
        })
        .unwrap()
    };
    let brute = |f: &dyn Fn(&Rect) -> bool| -> Vec<i64> {
        let mut v: Vec<i64> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| f(r))
            .map(|(i, _)| i as i64)
            .collect();
        v.sort_unstable();
        v
    };

    let q = Rect::new(200.0, 200.0, 230.0, 230.0);
    assert_eq!(
        run(SpatialOp::Encloses, Rect::new(210.0, 210.0, 212.0, 212.0)),
        brute(&|r| r.encloses(&Rect::new(210.0, 210.0, 212.0, 212.0)))
    );
    assert_eq!(
        run(SpatialOp::EnclosedBy, Rect::new(0.0, 0.0, 300.0, 300.0)),
        brute(&|r| Rect::new(0.0, 0.0, 300.0, 300.0).encloses(r))
    );
    assert_eq!(run(SpatialOp::Intersects, q), brute(&|r| r.intersects(&q)));

    // the ENCLOSES predicate is recognized with a low cost (the paper's
    // cost-estimation example)
    let att = db.registry().attachment(t).unwrap();
    let pred = Expr::Encloses(
        Box::new(Expr::Column(1)),
        Box::new(Expr::Const(Value::Rect(q))),
    );
    let choice = att
        .estimate(&rd, inst, &[pred])
        .expect("ENCLOSES recognized");
    let sm = db.registry().storage(rd.sm).unwrap();
    let scan_cost = sm.estimate(&rd, &[]).cost;
    assert!(
        choice.cost.total() < scan_cost.total(),
        "R-tree beats full scan"
    );
}

#[test]
fn rtree_maintenance_and_abort() {
    let db = open_db();
    let rel = db
        .with_txn(|txn| {
            db.create_relation(txn, "parcels", spatial_schema(), "heap", &AttrList::new())
        })
        .unwrap();
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "parcels",
            "rtree",
            "rt",
            &AttrList::parse("field=area").unwrap(),
        )
    })
    .unwrap();
    let r1 = Rect::new(0.0, 0.0, 10.0, 10.0);
    let r2 = Rect::new(100.0, 100.0, 110.0, 110.0);
    let k = db
        .with_txn(|txn| db.insert(txn, rel, parcel(1, r1)))
        .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("rt").unwrap();
    let path = AccessPath::Attachment(t, inst.instance);
    let count_hits = |q: Rect| -> usize {
        db.with_txn(|txn| {
            let scan = db.open_scan(
                txn,
                rel,
                path,
                AccessQuery::Spatial(SpatialOp::Intersects, q),
                None,
                None,
            )?;
            let mut n = 0;
            while db.scan_next(txn, scan)?.is_some() {
                n += 1;
            }
            Ok(n)
        })
        .unwrap()
    };
    assert_eq!(count_hits(r1), 1);
    // update moves the rect
    db.with_txn(|txn| db.update(txn, rel, &k, parcel(1, r2)).map(|_| ()))
        .unwrap();
    assert_eq!(count_hits(r1), 0);
    assert_eq!(count_hits(r2), 1);
    // aborted delete leaves the entry in place
    let txn = db.begin();
    db.delete(&txn, rel, &k).unwrap();
    db.abort(&txn).unwrap();
    assert_eq!(count_hits(r2), 1);
}

// ---------------------------------------------------------------------
// constraints, triggers, aggregates
// ---------------------------------------------------------------------

#[test]
fn deferred_check_constraint_runs_before_prepare() {
    let db = open_db();
    let rel = create_emp(&db);
    // deferred: salary > 0 checked only at commit
    let pred = Expr::cmp_col(CmpOp::Gt, 3, 0.0f64);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "check",
            "sal_def",
            &check_params(&pred, true).unwrap(),
        )
    })
    .unwrap();

    // a violation inside the transaction is fine if fixed before commit
    db.with_txn(|txn| {
        let k = db.insert(txn, rel, emp(1, "a", 0, -5.0))?; // would fail immediate
        db.update(txn, rel, &k, emp(1, "a", 0, 5.0))?; // fixed
        Ok(())
    })
    .unwrap();

    // an unfixed violation aborts the transaction at commit
    let txn = db.begin();
    db.insert(&txn, rel, emp(2, "b", 0, -1.0)).unwrap();
    let err = db.commit(&txn).unwrap_err();
    assert!(matches!(err, DmxError::ConstraintViolation(_)));
    assert_eq!(
        scan_all_ids(&db, rel, AccessPath::StorageMethod),
        vec![1],
        "aborted transaction's record is gone"
    );
}

#[test]
fn referential_integrity_restrict_and_cascade() {
    let db = open_db();
    let dept_schema = Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::not_null("name", DataType::Str),
    ])
    .unwrap();
    let dept = db
        .with_txn(|txn| db.create_relation(txn, "dept", dept_schema, "heap", &AttrList::new()))
        .unwrap();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "refint",
            "emp_dept_fk_child",
            &AttrList::parse("role=child, fields=dept, other=dept, other_fields=id").unwrap(),
        )?;
        db.create_attachment(
            txn,
            "dept",
            "refint",
            "emp_dept_fk_parent",
            &AttrList::parse(
                "role=parent, fields=id, other=employee, other_fields=dept, on_delete=cascade",
            )
            .unwrap(),
        )
    })
    .unwrap();

    let d1 = db
        .with_txn(|txn| {
            let k = db.insert(
                txn,
                dept,
                Record::new(vec![Value::Int(1), Value::from("eng")]),
            )?;
            db.insert(
                txn,
                dept,
                Record::new(vec![Value::Int(2), Value::from("hr")]),
            )?;
            Ok(k)
        })
        .unwrap();

    // child insert with missing parent is vetoed
    db.with_txn(|txn| {
        assert!(matches!(
            db.insert(txn, rel, emp(1, "x", 99, 1.0)),
            Err(DmxError::Veto { .. })
        ));
        db.insert(txn, rel, emp(1, "x", 1, 1.0))?;
        db.insert(txn, rel, emp(2, "y", 1, 1.0))?;
        db.insert(txn, rel, emp(3, "z", 2, 1.0))?;
        Ok(())
    })
    .unwrap();

    // cascade: deleting dept 1 removes its employees
    db.with_txn(|txn| db.delete(txn, dept, &d1)).unwrap();
    assert_eq!(scan_all_ids(&db, rel, AccessPath::StorageMethod), vec![3]);
}

#[test]
fn three_level_cascade_chain() {
    // dept → employee → assignment: deleting the dept cascades twice
    let db = open_db();
    let mk = |name: &str, cols: Vec<ColumnDef>| {
        db.with_txn(|txn| {
            db.create_relation(
                txn,
                name,
                Schema::new(cols.clone()).unwrap(),
                "heap",
                &AttrList::new(),
            )
        })
        .unwrap()
    };
    let dept = mk("dept", vec![ColumnDef::not_null("id", DataType::Int)]);
    let emp_rel = mk(
        "emp",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("dept", DataType::Int),
        ],
    );
    let asg = mk(
        "assignment",
        vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("emp", DataType::Int),
        ],
    );
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "dept",
            "refint",
            "fk1p",
            &AttrList::parse(
                "role=parent, fields=id, other=emp, other_fields=dept, on_delete=cascade",
            )
            .unwrap(),
        )?;
        db.create_attachment(
            txn,
            "emp",
            "refint",
            "fk2p",
            &AttrList::parse(
                "role=parent, fields=id, other=assignment, other_fields=emp, on_delete=cascade",
            )
            .unwrap(),
        )
    })
    .unwrap();
    let dk = db
        .with_txn(|txn| {
            let dk = db.insert(txn, dept, Record::new(vec![Value::Int(1)]))?;
            for e in 1..=3i64 {
                db.insert(
                    txn,
                    emp_rel,
                    Record::new(vec![Value::Int(e), Value::Int(1)]),
                )?;
                for a in 0..2i64 {
                    db.insert(
                        txn,
                        asg,
                        Record::new(vec![Value::Int(e * 10 + a), Value::Int(e)]),
                    )?;
                }
            }
            Ok(dk)
        })
        .unwrap();
    assert_eq!(scan_all_ids(&db, asg, AccessPath::StorageMethod).len(), 6);
    db.with_txn(|txn| db.delete(txn, dept, &dk)).unwrap();
    assert!(scan_all_ids(&db, emp_rel, AccessPath::StorageMethod).is_empty());
    assert!(
        scan_all_ids(&db, asg, AccessPath::StorageMethod).is_empty(),
        "cascade reached the grandchild"
    );
}

#[test]
fn trigger_hooks_and_audit_action() {
    let db = open_db();
    let rel = create_emp(&db);
    let audit_schema = Schema::new(vec![
        ColumnDef::not_null("event", DataType::Str),
        ColumnDef::not_null("relation", DataType::Str),
        ColumnDef::new("info", DataType::Str),
    ])
    .unwrap();
    let audit = db
        .with_txn(|txn| db.create_relation(txn, "audit", audit_schema, "heap", &AttrList::new()))
        .unwrap();
    let fired = Arc::new(AtomicU32::new(0));
    let fired2 = fired.clone();
    db.register_hook(
        "count_fires",
        Arc::new(move |_ctx, args| {
            assert_eq!(args.event, "delete");
            fired2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }),
    );
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "trigger",
            "audit_ins",
            &AttrList::parse("on=insert, action=audit:audit").unwrap(),
        )?;
        db.create_attachment(
            txn,
            "employee",
            "trigger",
            "hook_del",
            &AttrList::parse("on=delete, action=hook:count_fires").unwrap(),
        )
    })
    .unwrap();
    let k = db
        .with_txn(|txn| db.insert(txn, rel, emp(1, "a", 0, 1.0)))
        .unwrap();
    // the audit action inserted into the audit relation (cascading
    // modification through the dispatcher)
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            audit,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )?;
        let item = db.scan_next(txn, scan)?.expect("audit row");
        assert_eq!(item.values.unwrap()[0], Value::from("insert"));
        Ok(())
    })
    .unwrap();
    db.with_txn(|txn| db.delete(txn, rel, &k)).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fired on delete only");
}

#[test]
fn maintained_aggregates_track_groups() {
    let db = open_db();
    let rel = create_emp(&db);
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "aggregate",
            "sal_by_dept",
            &AttrList::parse("sum=salary, group_by=dept").unwrap(),
        )
    })
    .unwrap();
    let keys: Vec<RecordKey> = db
        .with_txn(|txn| {
            (0..10)
                .map(|i| db.insert(txn, rel, emp(i, "x", i % 2, 10.0 * (i + 1) as f64)))
                .collect()
        })
        .unwrap();
    // mutate: move one record between groups, delete another, abort a third change
    db.with_txn(|txn| {
        db.update(txn, rel, &keys[0], emp(0, "x", 1, 10.0))?; // dept 0 → 1
        db.delete(txn, rel, &keys[2])?; // dept 0, salary 30
        Ok(())
    })
    .unwrap();
    let txn = db.begin();
    db.insert(&txn, rel, emp(99, "ghost", 0, 1000.0)).unwrap();
    db.abort(&txn).unwrap();

    // read maintained aggregates and compare with brute force
    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("sal_by_dept").unwrap();
    let groups: Vec<(i64, i64, f64)> = db
        .with_txn(|txn| {
            let scan = db.open_scan(
                txn,
                rel,
                AccessPath::Attachment(t, inst.instance),
                AccessQuery::All,
                None,
                None,
            )?;
            let mut out = Vec::new();
            while let Some(item) = db.scan_next(txn, scan)? {
                let v = item.values.unwrap();
                out.push((v[0].as_int()?, v[1].as_int()?, v[2].as_float()?));
            }
            Ok(out)
        })
        .unwrap();
    // brute force from the relation
    let mut expect = std::collections::BTreeMap::new();
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )?;
        while let Some(item) = db.scan_next(txn, scan)? {
            let v = item.values.unwrap();
            let e = expect.entry(v[2].as_int()?).or_insert((0i64, 0.0f64));
            e.0 += 1;
            e.1 += v[3].as_float()?;
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(groups.len(), expect.len());
    for (g, c, s) in groups {
        let (ec, es) = expect[&g];
        assert_eq!(c, ec, "count for group {g}");
        assert!((s - es).abs() < 1e-9, "sum for group {g}: {s} vs {es}");
    }
}

#[test]
fn join_index_maintains_pairs_on_both_sides() {
    let db = open_db();
    let dept_schema = Schema::new(vec![
        ColumnDef::not_null("id", DataType::Int),
        ColumnDef::not_null("name", DataType::Str),
    ])
    .unwrap();
    let dept = db
        .with_txn(|txn| db.create_relation(txn, "dept", dept_schema, "heap", &AttrList::new()))
        .unwrap();
    let rel = create_emp(&db);
    // left side on employee(dept), right side on dept(id) — same name
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "joinindex",
            "emp_dept_ji",
            &AttrList::parse("side=left, fields=dept").unwrap(),
        )?;
        db.create_attachment(
            txn,
            "dept",
            "joinindex",
            "emp_dept_ji",
            &AttrList::parse("side=right, fields=id, other=employee").unwrap(),
        )
    })
    .unwrap();

    let dept_keys: Vec<RecordKey> = db
        .with_txn(|txn| {
            (1..=3i64)
                .map(|i| {
                    db.insert(
                        txn,
                        dept,
                        Record::new(vec![Value::Int(i), Value::from(format!("d{i}"))]),
                    )
                })
                .collect()
        })
        .unwrap();
    let emp_keys: Vec<RecordKey> = db
        .with_txn(|txn| {
            (0..12i64)
                .map(|i| db.insert(txn, rel, emp(i, "x", i % 3 + 1, 1.0)))
                .collect()
        })
        .unwrap();

    let count_pairs = || -> usize {
        let rd = db.catalog().get(rel).unwrap();
        let (t, inst) = rd.find_attachment("emp_dept_ji").unwrap();
        db.with_txn(|txn| {
            let scan = db.open_scan(
                txn,
                rel,
                AccessPath::Attachment(t, inst.instance),
                AccessQuery::All,
                None,
                None,
            )?;
            let mut n = 0;
            while let Some(item) = db.scan_next(txn, scan)? {
                // each pair: left key is an employee record key, right is
                // a dept record key — verify both resolve
                let rkey = match &item.values.as_ref().unwrap()[0] {
                    Value::Bytes(b) => RecordKey::new(b.clone()),
                    other => panic!("expected right key, got {other}"),
                };
                assert!(db.fetch(txn, rel, &item.key, Some(&[0]), None)?.is_some());
                assert!(db.fetch(txn, dept, &rkey, Some(&[0]), None)?.is_some());
                n += 1;
            }
            Ok(n)
        })
        .unwrap()
    };
    assert_eq!(count_pairs(), 12, "every employee matches exactly one dept");

    // deleting a dept removes its pairs (right-side maintenance)
    db.with_txn(|txn| db.delete(txn, dept, &dept_keys[0]))
        .unwrap();
    assert_eq!(count_pairs(), 8);
    // deleting an employee removes its pair (left-side maintenance)
    db.with_txn(|txn| db.delete(txn, rel, &emp_keys[1]))
        .unwrap();
    assert_eq!(count_pairs(), 7);
    // aborted insert leaves no pair behind
    let txn = db.begin();
    db.insert(&txn, rel, emp(100, "ghost", 2, 1.0)).unwrap();
    db.abort(&txn).unwrap();
    assert_eq!(count_pairs(), 7);
}

#[test]
fn crash_restart_keeps_indexes_consistent() {
    let env = DatabaseEnv::fresh();
    let reg = registry();
    let rel;
    {
        let db = Database::open(env.clone(), DatabaseConfig::default(), reg.clone()).unwrap();
        rel = db
            .with_txn(|txn| {
                db.create_relation(txn, "employee", emp_schema(), "heap", &AttrList::new())
            })
            .unwrap();
        db.with_txn(|txn| {
            db.create_attachment(
                txn,
                "employee",
                "btree",
                "by_id",
                &AttrList::parse("fields=id").unwrap(),
            )
        })
        .unwrap();
        db.with_txn(|txn| {
            for i in 0..20 {
                db.insert(txn, rel, emp(i, "x", 0, 1.0))?;
            }
            Ok(())
        })
        .unwrap();
        // uncommitted inserts lost in the crash
        let t = db.begin();
        for i in 100..105 {
            db.insert(&t, rel, emp(i, "ghost", 0, 1.0)).unwrap();
        }
        // crash without commit
    }
    let db = Database::open(env, DatabaseConfig::default(), reg).unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("by_id").unwrap();
    let ids = scan_all_ids(&db, rel, AccessPath::Attachment(t, inst.instance));
    assert_eq!(
        ids,
        (0..20).collect::<Vec<_>>(),
        "index matches relation after restart"
    );
    assert_eq!(scan_all_ids(&db, rel, AccessPath::StorageMethod).len(), 20);
}

#[test]
fn multiple_attachment_types_compose() {
    // heap + unique index + check + aggregate + trigger all at once;
    // a veto from the LAST attachment must undo the work of the earlier
    // ones (partial rollback across attachment types).
    let db = open_db();
    let rel = create_emp(&db);
    let audit_schema = Schema::new(vec![
        ColumnDef::not_null("event", DataType::Str),
        ColumnDef::not_null("relation", DataType::Str),
        ColumnDef::new("info", DataType::Str),
    ])
    .unwrap();
    db.with_txn(|txn| {
        db.create_relation(txn, "audit", audit_schema.clone(), "heap", &AttrList::new())
    })
    .unwrap();
    let pred = Expr::cmp_col(CmpOp::Lt, 0, 1000i64); // id < 1000
    db.with_txn(|txn| {
        db.create_attachment(
            txn,
            "employee",
            "btree",
            "u",
            &AttrList::parse("fields=id, unique=true").unwrap(),
        )?;
        db.create_attachment(
            txn,
            "employee",
            "aggregate",
            "agg",
            &AttrList::parse("sum=salary").unwrap(),
        )?;
        db.create_attachment(
            txn,
            "employee",
            "check",
            "c",
            &check_params(&pred, false).unwrap(),
        )
    })
    .unwrap();
    db.with_txn(|txn| {
        db.insert(txn, rel, emp(1, "ok", 0, 10.0))?;
        // check (registered LAST, highest attachment order position among
        // its type id) vetoes; index + aggregate updates must roll back
        assert!(db.insert(txn, rel, emp(5000, "bad", 0, 99.0)).is_err());
        Ok(())
    })
    .unwrap();
    let rd = db.catalog().get(rel).unwrap();
    let (t, inst) = rd.find_attachment("u").unwrap();
    assert_eq!(
        scan_all_ids(&db, rel, AccessPath::Attachment(t, inst.instance)),
        vec![1],
        "index clean after veto"
    );
    let (t, inst) = rd.find_attachment("agg").unwrap();
    db.with_txn(|txn| {
        let scan = db.open_scan(
            txn,
            rel,
            AccessPath::Attachment(t, inst.instance),
            AccessQuery::All,
            None,
            None,
        )?;
        let item = db.scan_next(txn, scan)?.unwrap();
        let v = item.values.unwrap();
        assert_eq!(v[1], Value::Int(1), "aggregate count clean after veto");
        assert_eq!(v[2], Value::Float(10.0));
        Ok(())
    })
    .unwrap();
}
