//! Maintained aggregates ("attachments … may have associated storage.
//! This storage can be used to … maintain statistics about relations or
//! precomputed function values for data stored in relations").
//!
//! Each instance maintains `COUNT(*)` and `SUM(<field>)` per group (or a
//! single global group) in a B-tree keyed by the encoded group value.
//! Maintenance is incremental: every relation modification applies a
//! delta and logs the group's *before- and after-images* ([`A_DELTA`]);
//! undo restores before-images in reverse log order and redo installs
//! after-images in forward log order. Full images rather than deltas make
//! both directions idempotent, which matters because numeric deltas are
//! not presence-checkable the way index entries are: replaying a delta
//! twice would double-count, installing an image twice cannot.

use std::sync::Arc;

use dmx_btree::{BTree, OnDuplicate};
use dmx_core::{
    AccessQuery, Attachment, AttachmentInstance, CommonServices, ExecCtx, RelationDescriptor,
    ScanItem, ScanOps,
};
use dmx_types::{
    key::{decode_values, encode_values},
    AttrList, DmxError, FieldId, FileId, Lsn, PageId, Record, RecordKey, Result, Schema, Value,
};

use crate::common::{
    decode_att_payload, encode_att_payload, log_att, read_u16, read_u32, read_u64, A_DELTA,
};

/// The maintained-aggregate attachment type.
pub struct Aggregate;

/// Instance descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct AggDesc {
    pub file: FileId,
    pub root_page: u32,
    /// Field whose SUM is maintained.
    pub sum_field: FieldId,
    /// Optional grouping field (`None` = one global group).
    pub group_field: Option<FieldId>,
}

impl AggDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(13);
        v.extend_from_slice(&self.file.0.to_le_bytes());
        v.extend_from_slice(&self.root_page.to_le_bytes());
        v.extend_from_slice(&self.sum_field.to_le_bytes());
        match self.group_field {
            None => v.push(0),
            Some(g) => {
                v.push(1);
                v.extend_from_slice(&g.to_le_bytes());
            }
        }
        v
    }

    pub fn decode(b: &[u8]) -> Result<AggDesc> {
        const WHAT: &str = "aggregate descriptor";
        let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
        let file = FileId(read_u32(b, 0, WHAT)?);
        let root_page = read_u32(b, 4, WHAT)?;
        let sum_field = read_u16(b, 8, WHAT)?;
        let group_field = match *b.get(10).ok_or_else(corrupt)? {
            0 => None,
            _ => Some(read_u16(b, 11, WHAT)?),
        };
        Ok(AggDesc {
            file,
            root_page,
            sum_field,
            group_field,
        })
    }
}

fn encode_cell(count: i64, sum: f64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&count.to_le_bytes());
    v.extend_from_slice(&sum.to_le_bytes());
    v
}

fn decode_cell(b: &[u8]) -> Result<(i64, f64)> {
    Ok((
        read_u64(b, 0, "aggregate cell")? as i64,
        f64::from_bits(read_u64(b, 8, "aggregate cell")?),
    ))
}

/// Before-image of a group's cell: `[0]` = absent, `[1] ∥ cell` = present.
fn encode_before(cell: Option<(i64, f64)>) -> Vec<u8> {
    match cell {
        None => vec![0],
        Some((c, s)) => {
            let mut v = vec![1];
            v.extend_from_slice(&encode_cell(c, s));
            v
        }
    }
}

/// A group cell's logged image: `None` = the group was absent,
/// `Some((count, sum))` otherwise.
type CellImage = Option<(i64, f64)>;

fn decode_before(b: &[u8]) -> Result<CellImage> {
    match b.split_first() {
        Some((0, _)) => Ok(None),
        Some((1, rest)) => Ok(Some(decode_cell(rest)?)),
        _ => Err(DmxError::Corrupt("bad aggregate before-image".into())),
    }
}

/// Logged images of a group's cell: before-image then after-image, each
/// self-delimiting ([`encode_before`]).
fn encode_images(before: Option<(i64, f64)>, after: Option<(i64, f64)>) -> Vec<u8> {
    let mut v = encode_before(before);
    v.extend_from_slice(&encode_before(after));
    v
}

fn decode_images(b: &[u8]) -> Result<(CellImage, CellImage)> {
    let first_len = match b.first() {
        Some(0) => 1,
        Some(1) => 17,
        _ => return Err(DmxError::Corrupt("bad aggregate image pair".into())),
    };
    let rest = b
        .get(first_len..)
        .ok_or_else(|| DmxError::Corrupt("short aggregate image pair".into()))?;
    Ok((decode_before(b)?, decode_before(rest)?))
}

impl Aggregate {
    fn tree(services: &Arc<CommonServices>, d: &AggDesc) -> BTree {
        BTree::open(
            &services.pool,
            PageId::new(d.file, d.root_page),
            &services.latches,
        )
    }

    fn group_key(d: &AggDesc, record: &Record) -> Result<Vec<u8>> {
        match d.group_field {
            None => Ok(encode_values(&[Value::Int(0)])),
            Some(g) => {
                let v = record
                    .values
                    .get(g as usize)
                    .cloned()
                    .ok_or_else(|| DmxError::InvalidArg(format!("no field {g}")))?;
                Ok(encode_values(&[v]))
            }
        }
    }

    fn sum_value(d: &AggDesc, record: &Record) -> Result<f64> {
        match record.values.get(d.sum_field as usize) {
            Some(Value::Null) | None => Ok(0.0),
            Some(v) => v.as_float(),
        }
    }

    /// Reads a group's before-image (for undo logging).
    fn read_before(
        services: &Arc<CommonServices>,
        desc: &[u8],
        group: &[u8],
    ) -> Result<Option<(i64, f64)>> {
        let d = AggDesc::decode(desc)?;
        Ok(match Self::tree(services, &d).get(group)? {
            Some(cell) => Some(decode_cell(&cell)?),
            None => None,
        })
    }

    /// Installs a group's cell image (undo restores before-images, redo
    /// installs after-images; forward execution installs the after-image
    /// it just computed). Every dirtied page is stamped with `lsn` so the
    /// cell cannot reach disk before its log record (write-ahead).
    fn install_image(
        services: &Arc<CommonServices>,
        desc: &[u8],
        group: &[u8],
        image: Option<(i64, f64)>,
        lsn: Lsn,
    ) -> Result<()> {
        let d = AggDesc::decode(desc)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        match image {
            None => {
                tree.delete(group)?;
            }
            Some((c, s)) => {
                tree.insert(group, &encode_cell(c, s), OnDuplicate::Replace)?;
            }
        }
        Ok(())
    }

    fn delta(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        record: &Record,
        sign: i64,
    ) -> Result<()> {
        let d = AggDesc::decode(&inst.desc)?;
        let group = Self::group_key(&d, record)?;
        let dsum = Self::sum_value(&d, record)? * sign as f64;
        let before = Self::read_before(ctx.services(), &inst.desc, &group)?;
        let (count, sum) = before.unwrap_or((0, 0.0));
        let (nc, ns) = (count + sign, sum + dsum);
        let after = if nc <= 0 { None } else { Some((nc, ns)) };
        let att = rd
            .attached_types()
            .find(|(_, insts)| {
                insts
                    .iter()
                    .any(|i| i.instance == inst.instance && i.name == inst.name)
            })
            .map(|(t, _)| t)
            .unwrap_or_default();
        let lsn = log_att(
            ctx,
            rd,
            att,
            A_DELTA,
            encode_att_payload(&inst.desc, &group, &encode_images(before, after)),
        );
        Self::install_image(ctx.services(), &inst.desc, &group, after, lsn)
    }
}

impl Attachment for Aggregate {
    fn name(&self) -> &str {
        "aggregate"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        params.check_allowed(&["sum", "group_by"], "aggregate")?;
        schema.field_id(params.require("sum", "aggregate")?)?;
        if let Some(g) = params.get("group_by") {
            schema.field_id(g)?;
        }
        Ok(())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let sum_field = rd.schema.field_id(params.require("sum", "aggregate")?)?;
        let group_field = match params.get("group_by") {
            Some(g) => Some(rd.schema.field_id(g)?),
            None => None,
        };
        let services = ctx.services();
        let file = services.disk.create_file()?;
        let tree = BTree::create(&services.pool, file, &services.latches)?;
        Ok(AggDesc {
            file,
            root_page: tree.root().page_no,
            sum_field,
            group_field,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()> {
        let d = AggDesc::decode(inst_desc)?;
        services.latches.forget(PageId::new(d.file, d.root_page));
        services.pool.discard_file(d.file);
        services.disk.delete_file(d.file)
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delta(ctx, rd, inst, new, 1)?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _old_key: &RecordKey,
        _new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delta(ctx, rd, inst, old, -1)?;
            self.delta(ctx, rd, inst, new, 1)?;
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delta(ctx, rd, inst, old, -1)?;
        }
        Ok(())
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        if op != A_DELTA {
            return Err(DmxError::Corrupt(format!("bad aggregate op {op}")));
        }
        let (desc, group, images) = decode_att_payload(payload)?;
        let (before, _) = decode_images(images)?;
        // Restoring full before-images in reverse log order is correct
        // regardless of which deltas actually reached disk.
        Self::install_image(services, desc, group, before, lsn)
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        if op != A_DELTA {
            return Err(DmxError::Corrupt(format!("bad aggregate op {op}")));
        }
        let (desc, group, images) = decode_att_payload(payload)?;
        let (_, after) = decode_images(images)?;
        // Installing full after-images in forward log order converges on
        // the committed cell values no matter how much reached disk.
        Self::install_image(services, desc, group, after, lsn)
    }

    fn supports_access(&self) -> bool {
        true
    }

    /// Reads the maintained aggregates: each item is
    /// `(group value, count, sum)`.
    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        query: &AccessQuery,
    ) -> Result<Box<dyn ScanOps>> {
        let d = AggDesc::decode(&instance.desc)?;
        let tree = Self::tree(ctx.services(), &d);
        let range = match query {
            AccessQuery::All => dmx_core::KeyRange::all(),
            AccessQuery::KeyEquals(k) => dmx_core::KeyRange::exact(k.clone()),
            AccessQuery::Range(r) => r.clone(),
            AccessQuery::Spatial(_, _) => {
                return Err(DmxError::Unsupported("aggregate: spatial query".into()))
            }
        };
        Ok(Box::new(AggScan {
            tree,
            range,
            after: None,
        }))
    }
}

struct AggScan {
    tree: BTree,
    range: dmx_core::KeyRange,
    after: Option<Vec<u8>>,
}

impl ScanOps for AggScan {
    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        use std::ops::Bound;
        let bound = match &self.after {
            Some(k) => Bound::Excluded(k.as_slice()),
            None => match &self.range.lo {
                Bound::Included(b) => Bound::Included(b.as_slice()),
                Bound::Excluded(b) => Bound::Excluded(b.as_slice()),
                Bound::Unbounded => Bound::Unbounded,
            },
        };
        let Some((key, cell)) = self.tree.seek(bound)? else {
            return Ok(None);
        };
        if !self.range.contains(&key) {
            return Ok(None);
        }
        self.after = Some(key.clone());
        let group = decode_values(&key, 1)?
            .pop()
            .ok_or_else(|| DmxError::Corrupt("empty aggregate group key".into()))?;
        let (count, sum) = decode_cell(&cell)?;
        Ok(Some(ScanItem {
            key: RecordKey::new(key),
            values: Some(vec![group, Value::Int(count), Value::Float(sum)]),
        }))
    }

    fn save_position(&self) -> Vec<u8> {
        crate::common_position::encode(self.after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = crate::common_position::decode(pos)?;
        Ok(())
    }

    fn items_are_record_keys(&self) -> bool {
        false // items are (group, count, sum) summaries
    }
}
