//! Referential integrity constraints, with cascading deletes.
//!
//! The paper: "the referential integrity attachment to a 'parent'
//! relation would perform record delete operations on the 'child'
//! relation when a 'parent' record is deleted. If the 'child' relation
//! also has a referential integrity attachment, it would perform record
//! delete operations on its 'child' relation. Thus, cascaded deletes can
//! be supported. On insert, the same attachment type on the 'child'
//! relation would test the 'parent' relation for a record with matching
//! referential integrity fields."
//!
//! One constraint = two instances of this type sharing a link name:
//! `role=child` on the referencing relation (checks parent existence on
//! insert/update) and `role=parent` on the referenced relation (restricts
//! or cascades on delete). The instance descriptor embeds the *other*
//! relation's id — the paper's "embedded references to descriptors for
//! other relations whenever the extension involves multiple tables".

use std::sync::Arc;

use dmx_core::{
    AccessPath, AccessQuery, Attachment, AttachmentInstance, CommonServices, ExecCtx,
    RelationDescriptor,
};
use dmx_expr::{CmpOp, Expr};

use crate::common::{read_u16, read_u32};
use dmx_types::{
    AttrList, DmxError, FieldId, Lsn, Record, RecordKey, RelationId, Result, Schema, Value,
};

/// The referential-integrity attachment type.
pub struct RefIntegrity;

/// What the parent side does when a referenced record is deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteRule {
    Restrict,
    Cascade,
}

/// Instance descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct RefDesc {
    /// True on the child (referencing) side.
    pub is_child: bool,
    /// Fields of *this* relation participating in the constraint.
    pub fields: Vec<FieldId>,
    /// The other relation.
    pub other: RelationId,
    /// Matching fields of the other relation.
    pub other_fields: Vec<FieldId>,
    /// Parent-side delete rule.
    pub rule: DeleteRule,
}

impl RefDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = vec![
            self.is_child as u8,
            (self.rule == DeleteRule::Cascade) as u8,
        ];
        v.extend_from_slice(&self.other.0.to_le_bytes());
        for list in [&self.fields, &self.other_fields] {
            v.extend_from_slice(&(list.len() as u16).to_le_bytes());
            for f in list {
                v.extend_from_slice(&f.to_le_bytes());
            }
        }
        v
    }

    pub fn decode(b: &[u8]) -> Result<RefDesc> {
        const WHAT: &str = "refint descriptor";
        let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
        let is_child = *b.first().ok_or_else(corrupt)? != 0;
        let cascade = *b.get(1).ok_or_else(corrupt)? != 0;
        let other = RelationId(read_u32(b, 2, WHAT)?);
        let mut pos = 6usize;
        let mut read_list = || -> Result<Vec<FieldId>> {
            let n = read_u16(b, pos, WHAT)? as usize;
            pos += 2;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(read_u16(b, pos, WHAT)?);
                pos += 2;
            }
            Ok(fields)
        };
        let fields = read_list()?;
        let other_fields = read_list()?;
        Ok(RefDesc {
            is_child,
            fields,
            other,
            other_fields,
            rule: if cascade {
                DeleteRule::Cascade
            } else {
                DeleteRule::Restrict
            },
        })
    }
}

/// Builds an equality predicate `∧ other_fields[i] = values[i]`.
fn match_pred(other_fields: &[FieldId], values: &[Value]) -> Expr {
    Expr::And(
        other_fields
            .iter()
            .zip(values)
            .map(|(&f, v)| {
                Expr::Cmp(
                    CmpOp::Eq,
                    Box::new(Expr::Column(f)),
                    Box::new(Expr::Const(v.clone())),
                )
            })
            .collect(),
    )
}

impl RefIntegrity {
    fn parse(
        params: &AttrList,
        schema: &Schema,
    ) -> Result<(bool, Vec<FieldId>, DeleteRule, String, String)> {
        params.check_allowed(
            &["role", "fields", "other", "other_fields", "on_delete"],
            "referential integrity",
        )?;
        let role = params.require("role", "referential integrity")?;
        let is_child = match role.to_ascii_lowercase().as_str() {
            "child" => true,
            "parent" => false,
            other => {
                return Err(DmxError::InvalidArg(format!(
                    "refint role must be child|parent, got {other}"
                )))
            }
        };
        let fields =
            crate::common::parse_fields(params, "fields", "referential integrity", schema)?;
        let rule = match params
            .get("on_delete")
            .unwrap_or("restrict")
            .to_ascii_lowercase()
            .as_str()
        {
            "restrict" => DeleteRule::Restrict,
            "cascade" => DeleteRule::Cascade,
            other => {
                return Err(DmxError::InvalidArg(format!(
                    "on_delete must be restrict|cascade, got {other}"
                )))
            }
        };
        let other = params
            .require("other", "referential integrity")?
            .to_string();
        let other_fields = params
            .require("other_fields", "referential integrity")?
            .to_string();
        Ok((is_child, fields, rule, other, other_fields))
    }

    /// True when the other relation has at least one record matching the
    /// given values on `other_fields`.
    fn other_has_match(ctx: &ExecCtx<'_>, d: &RefDesc, values: &[Value]) -> Result<bool> {
        let other_rd = ctx.db.catalog().get(d.other)?;
        let pred = match_pred(&d.other_fields, values);
        let inner = ctx.db.open_scan_raw(
            ctx,
            &other_rd,
            AccessPath::StorageMethod,
            AccessQuery::All,
            Some(pred),
            Some(vec![]),
        )?;
        let mut scan = inner;
        Ok(scan.next(ctx)?.is_some())
    }

    /// Collects the record keys of matching records in the other relation.
    fn matching_other_keys(
        ctx: &ExecCtx<'_>,
        d: &RefDesc,
        values: &[Value],
    ) -> Result<Vec<RecordKey>> {
        let other_rd = ctx.db.catalog().get(d.other)?;
        let pred = match_pred(&d.other_fields, values);
        let mut scan = ctx.db.open_scan_raw(
            ctx,
            &other_rd,
            AccessPath::StorageMethod,
            AccessQuery::All,
            Some(pred),
            Some(vec![]),
        )?;
        let mut keys = Vec::new();
        while let Some(item) = scan.next(ctx)? {
            keys.push(item.key);
        }
        Ok(keys)
    }

    fn check_child_side(
        &self,
        ctx: &ExecCtx<'_>,
        inst: &AttachmentInstance,
        record: &Record,
    ) -> Result<()> {
        let d = RefDesc::decode(&inst.desc)?;
        if !d.is_child {
            return Ok(());
        }
        let values = crate::common::field_values(record, &d.fields)?;
        if values.iter().any(|v| v.is_null()) {
            return Ok(()); // SQL rule: NULL foreign keys reference nothing
        }
        if Self::other_has_match(ctx, &d, &values)? {
            Ok(())
        } else {
            Err(DmxError::veto(
                self.name(),
                format!("'{}': no matching parent record", inst.name),
            ))
        }
    }
}

impl Attachment for RefIntegrity {
    fn name(&self) -> &str {
        "refint"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        Self::parse(params, schema).map(|_| ())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let (is_child, fields, rule, other_name, other_fields_spec) =
            Self::parse(params, &rd.schema)?;
        let other_rd = ctx.db.catalog().get_by_name(&other_name)?;
        let mut other_fields = Vec::new();
        for name in other_fields_spec.split(',') {
            let name = name.trim();
            if !name.is_empty() {
                other_fields.push(other_rd.schema.field_id(name)?);
            }
        }
        if other_fields.len() != fields.len() {
            return Err(DmxError::InvalidArg(
                "refint: fields and other_fields must have equal length".into(),
            ));
        }
        Ok(RefDesc {
            is_child,
            fields,
            other: other_rd.id,
            other_fields,
            rule,
        }
        .encode())
    }

    fn destroy_instance(&self, _services: &Arc<CommonServices>, _inst_desc: &[u8]) -> Result<()> {
        Ok(())
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.check_child_side(ctx, inst, new)?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _old_key: &RecordKey,
        _new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = RefDesc::decode(&inst.desc)?;
            if d.is_child {
                self.check_child_side(ctx, inst, new)?;
            } else {
                // Parent-side: changing referenced key fields while
                // children point at them is restricted.
                let old_vals = crate::common::field_values(old, &d.fields)?;
                let new_vals = crate::common::field_values(new, &d.fields)?;
                if old_vals != new_vals && Self::other_has_match(ctx, &d, &old_vals)? {
                    return Err(DmxError::veto(
                        self.name(),
                        format!("'{}': referenced key in use by child records", inst.name),
                    ));
                }
            }
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = RefDesc::decode(&inst.desc)?;
            if d.is_child {
                continue; // deleting a child never violates
            }
            let values = crate::common::field_values(old, &d.fields)?;
            if values.iter().any(|v| v.is_null()) {
                continue;
            }
            match d.rule {
                DeleteRule::Restrict => {
                    if Self::other_has_match(ctx, &d, &values)? {
                        return Err(DmxError::veto(
                            self.name(),
                            format!("'{}': child records exist", inst.name),
                        ));
                    }
                }
                DeleteRule::Cascade => {
                    // "Attachments may access or modify other data in the
                    // database by calling the appropriate storage method or
                    // attachment routines. In this manner, modifications
                    // may cascade in the database."
                    for child_key in Self::matching_other_keys(ctx, &d, &values)? {
                        ctx.db.delete(ctx.txn, d.other, &child_key)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn undo(
        &self,
        _services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        _lsn: Lsn,
        _op: u8,
        _payload: &[u8],
    ) -> Result<()> {
        // The constraint itself holds no state; cascaded deletes were
        // performed through the dispatcher and carry their own undo
        // records.
        Ok(())
    }
}
