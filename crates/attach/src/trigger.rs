//! Trigger attachments.
//!
//! "Attachments can … trigger additional actions within the database or
//! even outside of the database system." Trigger actions are registered
//! "at the factory" as named hooks on the [`dmx_core::Database`]
//! (arbitrary Rust code — including effects outside the database), or use
//! the built-in `audit` action that inserts an audit record into another
//! relation — a cascading modification that itself runs through the full
//! two-step dispatch.

use std::sync::Arc;

use dmx_core::HookArgs;
use dmx_core::{Attachment, AttachmentInstance, CommonServices, ExecCtx, RelationDescriptor};

use crate::common::tail;
use dmx_types::{AttrList, DmxError, Lsn, Record, RecordKey, Result, Schema, Value};

/// The trigger attachment type.
pub struct Trigger;

/// Which modifications fire the trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireOn {
    pub insert: bool,
    pub update: bool,
    pub delete: bool,
}

/// Instance descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDesc {
    pub on: FireOn,
    /// `hook:<name>` or `audit:<relation name>`.
    pub action: String,
}

impl TriggerDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = vec![
            self.on.insert as u8,
            self.on.update as u8,
            self.on.delete as u8,
        ];
        v.extend_from_slice(self.action.as_bytes());
        v
    }

    pub fn decode(b: &[u8]) -> Result<TriggerDesc> {
        if b.len() < 3 {
            return Err(DmxError::Corrupt("short trigger descriptor".into()));
        }
        Ok(TriggerDesc {
            on: FireOn {
                insert: b[0] != 0,
                update: b[1] != 0,
                delete: b[2] != 0,
            },
            action: String::from_utf8(tail(b, 3, "trigger descriptor")?.to_vec())
                .map_err(|_| DmxError::Corrupt("trigger action not utf8".into()))?,
        })
    }
}

impl Trigger {
    fn parse(params: &AttrList) -> Result<TriggerDesc> {
        params.check_allowed(&["on", "action"], "trigger")?;
        let spec = params.get("on").unwrap_or("insert,update,delete");
        let mut on = FireOn {
            insert: false,
            update: false,
            delete: false,
        };
        for ev in spec.split(',') {
            match ev.trim().to_ascii_lowercase().as_str() {
                "insert" => on.insert = true,
                "update" => on.update = true,
                "delete" => on.delete = true,
                "" => {}
                other => {
                    return Err(DmxError::InvalidArg(format!(
                        "trigger event must be insert|update|delete, got {other}"
                    )))
                }
            }
        }
        let action = params.require("action", "trigger")?.to_string();
        if !(action.starts_with("hook:") || action.starts_with("audit:")) {
            return Err(DmxError::InvalidArg(format!(
                "trigger action must be hook:<name> or audit:<relation>, got {action}"
            )));
        }
        Ok(TriggerDesc { on, action })
    }

    #[allow(clippy::too_many_arguments)]
    fn fire(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        event: &str,
        key: &RecordKey,
        old: Option<&Record>,
        new: Option<&Record>,
    ) -> Result<()> {
        let d = TriggerDesc::decode(&inst.desc)?;
        let fires = match event {
            "insert" => d.on.insert,
            "update" => d.on.update,
            _ => d.on.delete,
        };
        if !fires {
            return Ok(());
        }
        if let Some(hook_name) = d.action.strip_prefix("hook:") {
            let hook = ctx.db.hook(hook_name)?;
            return hook(
                ctx,
                &HookArgs {
                    event,
                    relation: rd.id,
                    key,
                    old,
                    new,
                },
            );
        }
        if let Some(target) = d.action.strip_prefix("audit:") {
            let target_rd = ctx.db.catalog().get_by_name(target)?;
            // audit relations have schema (event STRING, relation STRING,
            // info STRING)
            let info = new
                .or(old)
                .map(|r| format!("{:?}", r.values))
                .unwrap_or_default();
            let audit = Record::new(vec![
                Value::from(event),
                Value::from(rd.name.as_str()),
                Value::from(info),
            ]);
            ctx.db.insert(ctx.txn, target_rd.id, audit)?;
            return Ok(());
        }
        Err(DmxError::Corrupt(format!(
            "bad trigger action {}",
            d.action
        )))
    }
}

impl Attachment for Trigger {
    fn name(&self) -> &str {
        "trigger"
    }

    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        Self::parse(params).map(|_| ())
    }

    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        Ok(Self::parse(params)?.encode())
    }

    fn destroy_instance(&self, _services: &Arc<CommonServices>, _inst_desc: &[u8]) -> Result<()> {
        Ok(())
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.fire(ctx, rd, inst, "insert", key, None, Some(new))?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _old_key: &RecordKey,
        new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.fire(ctx, rd, inst, "update", new_key, Some(old), Some(new))?;
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.fire(ctx, rd, inst, "delete", key, Some(old), None)?;
        }
        Ok(())
    }

    fn undo(
        &self,
        _services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        _lsn: Lsn,
        _op: u8,
        _payload: &[u8],
    ) -> Result<()> {
        // Triggered database modifications were dispatched normally and
        // carry their own undo records; external actions are outside the
        // recovery sphere (as in the paper).
        Ok(())
    }
}
