//! The maintained-statistics attachment ("this storage can be used to …
//! maintain statistics about relations").
//!
//! One instance per relation maintains, as WAL-logged side effects of
//! ordinary DML, the statistics the cost-estimation interface consumes:
//! an exact row count and, per numeric (`Int`/`Float`) field, a NULL
//! count, a linear-counting distinct sketch, min/max bounds and — after
//! `ANALYZE TABLE` froze bucket bounds — a fixed-bucket equi-width
//! histogram. The whole state lives in **one cell** of a private B-tree
//! (keyed by a constant), so maintenance is a read-modify-write of a
//! single hot page; like [`crate::aggregate`], every change logs the
//! cell's *before- and after-images* ([`A_DELTA`]) because numeric state
//! is not presence-checkable: replaying a delta twice would double-count,
//! installing an image twice cannot.
//!
//! After every installed image the attachment *publishes* an immutable
//! [`TableStats`] snapshot into the relation descriptor's shared
//! [`dmx_core::RelationStats`] handle, which every storage method's
//! `estimate` and the planner consult ([`dmx_expr::stats::selectivity`]).
//! [`Attachment::activate`] re-publishes from durable state on database
//! open; `undo`/`redo` re-publish the image they install so aborts and
//! restarts never leave a stale snapshot behind.
//!
//! Accuracy contract (documented in DESIGN.md §10.4): row and NULL
//! counts are exact; min/max and the distinct sketch only *widen* under
//! deletes (exact again after the next `ANALYZE`); histogram buckets are
//! incremented/decremented with out-of-bounds values clamped into the
//! edge buckets.

use std::sync::Arc;

use dmx_btree::{BTree, OnDuplicate};
use dmx_core::{Attachment, AttachmentInstance, CommonServices, ExecCtx, RelationDescriptor};
use dmx_expr::stats::{value_to_f64, ColumnStats, Histogram, TableStats};
use dmx_types::{
    key::{decode_values, encode_values},
    AttrList, DataType, DmxError, FileId, Lsn, PageId, Record, RecordKey, Result, Schema, Value,
};

use crate::common::{
    decode_att_payload, encode_att_payload, log_att, read_u16, read_u32, read_u64, tail, A_DELTA,
};

/// The maintained-statistics attachment type.
pub struct Stats;

/// Bytes in the per-field linear-counting distinct sketch (256 bits).
pub const SKETCH_BYTES: usize = 32;

/// Instance descriptor: the private B-tree holding the single cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsDesc {
    pub file: FileId,
    pub root_page: u32,
}

impl StatsDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(8);
        v.extend_from_slice(&self.file.0.to_le_bytes());
        v.extend_from_slice(&self.root_page.to_le_bytes());
        v
    }

    pub fn decode(b: &[u8]) -> Result<StatsDesc> {
        const WHAT: &str = "stats descriptor";
        Ok(StatsDesc {
            file: FileId(read_u32(b, 0, WHAT)?),
            root_page: read_u32(b, 4, WHAT)?,
        })
    }
}

/// Per-field maintained state inside the cell.
#[derive(Debug, Clone, PartialEq)]
struct ColCell {
    /// `false` for non-numeric fields: only the tag byte is stored.
    tracked: bool,
    nulls: u64,
    /// Linear-counting bitmap over FNV-1a hashes of encoded values.
    sketch: [u8; SKETCH_BYTES],
    min: Option<Value>,
    max: Option<Value>,
    hist: Option<Histogram>,
}

impl ColCell {
    fn untracked() -> ColCell {
        ColCell {
            tracked: false,
            nulls: 0,
            sketch: [0; SKETCH_BYTES],
            min: None,
            max: None,
            hist: None,
        }
    }

    fn tracked() -> ColCell {
        ColCell {
            tracked: true,
            ..ColCell::untracked()
        }
    }
}

/// The whole maintained cell: row count plus per-field state.
#[derive(Debug, Clone, PartialEq)]
struct StatsCell {
    rows: u64,
    cols: Vec<ColCell>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn sketch_insert(sketch: &mut [u8; SKETCH_BYTES], v: &Value) {
    let bit = (fnv1a(&encode_values(std::slice::from_ref(v))) % (SKETCH_BYTES as u64 * 8)) as usize;
    sketch[bit / 8] |= 1 << (bit % 8);
}

/// Linear-counting estimate: `-m · ln(zeros / m)`, capped into
/// `[1, rows]`; a saturated sketch (no zero bits) degrades to "all rows
/// distinct", which matches near-unique fields.
fn distinct_estimate(sketch: &[u8; SKETCH_BYTES], rows: u64) -> u64 {
    if rows == 0 {
        return 0;
    }
    let m = (SKETCH_BYTES * 8) as f64;
    let zeros: u64 = sketch.iter().map(|b| b.count_zeros() as u64).sum();
    if zeros == 0 {
        return rows;
    }
    let est = (m * (m / zeros as f64).ln()).round() as u64;
    est.clamp(1, rows)
}

impl StatsCell {
    fn new(schema: &Schema) -> StatsCell {
        StatsCell {
            rows: 0,
            cols: schema
                .columns()
                .iter()
                .map(|c| match c.data_type {
                    DataType::Int | DataType::Float => ColCell::tracked(),
                    _ => ColCell::untracked(),
                })
                .collect(),
        }
    }

    /// Applies one record with `sign` +1 (insert) or -1 (delete).
    fn apply(&mut self, record: &Record, sign: i64) {
        self.rows = if sign >= 0 {
            self.rows.saturating_add(1)
        } else {
            self.rows.saturating_sub(1)
        };
        for (i, col) in self.cols.iter_mut().enumerate() {
            if !col.tracked {
                continue;
            }
            match record.values.get(i) {
                Some(Value::Null) | None => {
                    col.nulls = if sign >= 0 {
                        col.nulls.saturating_add(1)
                    } else {
                        col.nulls.saturating_sub(1)
                    };
                }
                Some(v) => {
                    if sign >= 0 {
                        sketch_insert(&mut col.sketch, v);
                        widen(&mut col.min, v, std::cmp::Ordering::Less);
                        widen(&mut col.max, v, std::cmp::Ordering::Greater);
                    }
                    if let (Some(h), Some(x)) = (&mut col.hist, value_to_f64(v)) {
                        h.add(x, sign);
                    }
                }
            }
        }
    }

    /// The planner-facing snapshot of this cell.
    fn to_table_stats(&self) -> TableStats {
        TableStats {
            rows: self.rows,
            columns: self
                .cols
                .iter()
                .map(|c| {
                    if !c.tracked {
                        return None;
                    }
                    Some(ColumnStats {
                        nulls: c.nulls,
                        distinct: distinct_estimate(&c.sketch, self.rows.saturating_sub(c.nulls)),
                        min: c.min.clone(),
                        max: c.max.clone(),
                        histogram: c.hist.clone(),
                    })
                })
                .collect(),
        }
    }
}

/// Keeps `slot` as the extreme of the values seen so far (`Less` for
/// min, `Greater` for max), comparing through the numeric view.
fn widen(slot: &mut Option<Value>, v: &Value, keep: std::cmp::Ordering) {
    let Some(x) = value_to_f64(v) else { return };
    match slot {
        None => *slot = Some(v.clone()),
        Some(cur) => {
            let Some(c) = value_to_f64(cur) else {
                *slot = Some(v.clone());
                return;
            };
            if x.partial_cmp(&c) == Some(keep) {
                *slot = Some(v.clone());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cell serialization.
// ---------------------------------------------------------------------

fn encode_value_opt(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => out.push(0),
        // Ints and floats carry their own variant tag: the
        // order-preserving key encoding folds Int(2) and Float(2.0)
        // into one byte string, which would flip the min/max spelling
        // (and the sys.statistics rendering) across a reopen.
        Some(Value::Int(i)) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Some(Value::Float(x)) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Some(v) => {
            out.push(1);
            let enc = encode_values(std::slice::from_ref(v));
            out.extend_from_slice(&(enc.len() as u16).to_le_bytes());
            out.extend_from_slice(&enc);
        }
    }
}

fn decode_value_opt(b: &[u8], off: &mut usize) -> Result<Option<Value>> {
    const WHAT: &str = "stats cell value";
    let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
    let read8 = |b: &[u8], off: &mut usize| -> Result<[u8; 8]> {
        let raw = b.get(*off..*off + 8).ok_or_else(corrupt)?;
        *off += 8;
        raw.try_into()
            .map_err(|_| DmxError::Corrupt(format!("short {WHAT}")))
    };
    let tag = *b.get(*off).ok_or_else(corrupt)?;
    *off += 1;
    match tag {
        0 => Ok(None),
        2 => Ok(Some(Value::Int(i64::from_le_bytes(read8(b, off)?)))),
        3 => Ok(Some(Value::Float(f64::from_bits(u64::from_le_bytes(
            read8(b, off)?,
        ))))),
        1 => {
            let len = read_u16(b, *off, WHAT)? as usize;
            *off += 2;
            let enc = b.get(*off..*off + len).ok_or_else(corrupt)?;
            *off += len;
            let v = decode_values(enc, 1)?
                .pop()
                .ok_or_else(|| DmxError::Corrupt(format!("empty {WHAT}")))?;
            Ok(Some(v))
        }
        _ => Err(DmxError::Corrupt(format!("bad {WHAT} tag {tag}"))),
    }
}

fn encode_cell(cell: &StatsCell) -> Vec<u8> {
    let mut v = Vec::with_capacity(16 + cell.cols.len() * 64);
    v.extend_from_slice(&cell.rows.to_le_bytes());
    v.extend_from_slice(&(cell.cols.len() as u16).to_le_bytes());
    for c in &cell.cols {
        if !c.tracked {
            v.push(0);
            continue;
        }
        v.push(1);
        v.extend_from_slice(&c.nulls.to_le_bytes());
        v.extend_from_slice(&c.sketch);
        encode_value_opt(&mut v, &c.min);
        encode_value_opt(&mut v, &c.max);
        match &c.hist {
            None => v.push(0),
            Some(h) => {
                v.push(1);
                v.extend_from_slice(&h.lo.to_le_bytes());
                v.extend_from_slice(&h.hi.to_le_bytes());
                v.push(h.buckets.len() as u8);
                for b in &h.buckets {
                    v.extend_from_slice(&b.to_le_bytes());
                }
            }
        }
    }
    v
}

fn decode_cell(b: &[u8]) -> Result<StatsCell> {
    const WHAT: &str = "stats cell";
    let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
    let rows = read_u64(b, 0, WHAT)?;
    let ncols = read_u16(b, 8, WHAT)? as usize;
    let mut off = 10;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let tag = *b.get(off).ok_or_else(corrupt)?;
        off += 1;
        if tag == 0 {
            cols.push(ColCell::untracked());
            continue;
        }
        let nulls = read_u64(b, off, WHAT)?;
        off += 8;
        let sketch: [u8; SKETCH_BYTES] = b
            .get(off..off + SKETCH_BYTES)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(corrupt)?;
        off += SKETCH_BYTES;
        let min = decode_value_opt(b, &mut off)?;
        let max = decode_value_opt(b, &mut off)?;
        let htag = *b.get(off).ok_or_else(corrupt)?;
        off += 1;
        let hist = if htag == 0 {
            None
        } else {
            let lo = f64::from_bits(read_u64(b, off, WHAT)?);
            let hi = f64::from_bits(read_u64(b, off + 8, WHAT)?);
            let nb = *b.get(off + 16).ok_or_else(corrupt)? as usize;
            off += 17;
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                buckets.push(read_u64(b, off, WHAT)?);
                off += 8;
            }
            Some(Histogram { lo, hi, buckets })
        };
        cols.push(ColCell {
            tracked: true,
            nulls,
            sketch,
            min,
            max,
            hist,
        });
    }
    let _ = tail(b, off, WHAT)?;
    Ok(StatsCell { rows, cols })
}

/// Before/after image of the cell: `[0]` = absent, `[1] ∥ u32 len ∥
/// cell` = present (length-prefixed because cells are variable-size).
fn encode_image(out: &mut Vec<u8>, cell: &Option<StatsCell>) {
    match cell {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            let enc = encode_cell(c);
            out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
            out.extend_from_slice(&enc);
        }
    }
}

fn decode_image(b: &[u8], off: &mut usize) -> Result<Option<StatsCell>> {
    const WHAT: &str = "stats image";
    let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
    let tag = *b.get(*off).ok_or_else(corrupt)?;
    *off += 1;
    if tag == 0 {
        return Ok(None);
    }
    let len = read_u32(b, *off, WHAT)? as usize;
    *off += 4;
    let enc = b.get(*off..*off + len).ok_or_else(corrupt)?;
    *off += len;
    Ok(Some(decode_cell(enc)?))
}

fn encode_images(before: &Option<StatsCell>, after: &Option<StatsCell>) -> Vec<u8> {
    let mut v = Vec::new();
    encode_image(&mut v, before);
    encode_image(&mut v, after);
    v
}

fn decode_images(b: &[u8]) -> Result<(Option<StatsCell>, Option<StatsCell>)> {
    let mut off = 0;
    let before = decode_image(b, &mut off)?;
    let after = decode_image(b, &mut off)?;
    Ok((before, after))
}

impl Stats {
    fn tree(services: &Arc<CommonServices>, d: &StatsDesc) -> BTree {
        BTree::open(
            &services.pool,
            PageId::new(d.file, d.root_page),
            &services.latches,
        )
    }

    /// The single cell's constant key.
    fn cell_key() -> Vec<u8> {
        encode_values(&[Value::Int(0)])
    }

    fn read_cell(services: &Arc<CommonServices>, desc: &[u8]) -> Result<Option<StatsCell>> {
        let d = StatsDesc::decode(desc)?;
        Ok(match Self::tree(services, &d).get(&Self::cell_key())? {
            Some(raw) => Some(decode_cell(&raw)?),
            None => None,
        })
    }

    /// Installs a cell image (forward execution installs the after-image
    /// it computed, undo the before-image, redo the after-image). Dirty
    /// pages are stamped with `lsn` (write-ahead rule).
    fn install_image(
        services: &Arc<CommonServices>,
        desc: &[u8],
        image: &Option<StatsCell>,
        lsn: Lsn,
    ) -> Result<()> {
        let d = StatsDesc::decode(desc)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        match image {
            None => {
                tree.delete(&Self::cell_key())?;
            }
            Some(c) => {
                tree.insert(&Self::cell_key(), &encode_cell(c), OnDuplicate::Replace)?;
            }
        }
        Ok(())
    }

    /// Publishes the image's planner snapshot into the relation's shared
    /// statistics handle.
    fn publish(rd: &RelationDescriptor, image: &Option<StatsCell>) {
        rd.stats
            .publish_table_stats(image.as_ref().map(|c| Arc::new(c.to_table_stats())));
    }

    /// One maintained change: `old`/`new` follow the DML op (insert =
    /// new only, delete = old only, update = both — one logged image
    /// pair per op, not one per side).
    fn delta(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        old: Option<&Record>,
        new: Option<&Record>,
    ) -> Result<()> {
        let before = Self::read_cell(ctx.services(), &inst.desc)?;
        let mut cell = match &before {
            Some(c) => c.clone(),
            None => StatsCell::new(&rd.schema),
        };
        if let Some(o) = old {
            cell.apply(o, -1);
        }
        if let Some(n) = new {
            cell.apply(n, 1);
        }
        let after = Some(cell);
        self.log_and_install(ctx, rd, inst, &before, &after)
    }

    /// Logs the image pair, installs the after-image and publishes it.
    fn log_and_install(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        before: &Option<StatsCell>,
        after: &Option<StatsCell>,
    ) -> Result<()> {
        let att = rd
            .attached_types()
            .find(|(_, insts)| {
                insts
                    .iter()
                    .any(|i| i.instance == inst.instance && i.name == inst.name)
            })
            .map(|(t, _)| t)
            .unwrap_or_default();
        let lsn = log_att(
            ctx,
            rd,
            att,
            A_DELTA,
            encode_att_payload(&inst.desc, &Self::cell_key(), &encode_images(before, after)),
        );
        Self::install_image(ctx.services(), &inst.desc, after, lsn)?;
        Self::publish(rd, after);
        Ok(())
    }
}

impl Attachment for Stats {
    fn name(&self) -> &str {
        "stats"
    }

    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&[], "stats")
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _name: &str,
        _params: &AttrList,
    ) -> Result<Vec<u8>> {
        let services = ctx.services();
        let file = services.disk.create_file()?;
        let tree = BTree::create(&services.pool, file, &services.latches)?;
        Ok(StatsDesc {
            file,
            root_page: tree.root().page_no,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()> {
        let d = StatsDesc::decode(inst_desc)?;
        services.latches.forget(PageId::new(d.file, d.root_page));
        services.pool.discard_file(d.file);
        services.disk.delete_file(d.file)
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delta(ctx, rd, inst, None, Some(new))?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _old_key: &RecordKey,
        _new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delta(ctx, rd, inst, Some(old), Some(new))?;
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delta(ctx, rd, inst, Some(old), None)?;
        }
        Ok(())
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        if op != A_DELTA {
            return Err(DmxError::Corrupt(format!("bad stats op {op}")));
        }
        let (desc, _key, images) = decode_att_payload(payload)?;
        let (before, _) = decode_images(images)?;
        // Full before-images in reverse log order are idempotent; the
        // planner snapshot reverts with the durable cell so an abort
        // never leaves inflated statistics published.
        Self::install_image(services, desc, &before, lsn)?;
        Self::publish(rd, &before);
        Ok(())
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        if op != A_DELTA {
            return Err(DmxError::Corrupt(format!("bad stats op {op}")));
        }
        let (desc, _key, images) = decode_att_payload(payload)?;
        let (_, after) = decode_images(images)?;
        Self::install_image(services, desc, &after, lsn)?;
        Self::publish(rd, &after);
        Ok(())
    }

    /// Re-publishes the planner snapshot from durable state on database
    /// open (descriptor decode starts with an empty in-memory handle).
    fn activate(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
    ) -> Result<()> {
        let cell = Self::read_cell(services, &instance.desc)?;
        Self::publish(rd, &cell);
        Ok(())
    }

    /// Retracts the published snapshot when the instance is dropped; the
    /// planner falls back to guesses immediately.
    fn deactivate(&self, rd: &RelationDescriptor, _instance: &AttachmentInstance) {
        rd.stats.publish_table_stats(None);
    }

    /// `ANALYZE TABLE`: rebuilds the cell *exactly* from the offered
    /// full image — exact distinct-sketch/min/max, and histograms with
    /// bucket bounds frozen at the observed min/max.
    fn analyze(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        records: &[Record],
    ) -> Result<bool> {
        for inst in instances {
            let mut cell = StatsCell::new(&rd.schema);
            for r in records {
                cell.apply(r, 1);
            }
            // Freeze histogram bounds at the observed min/max, then
            // fill the buckets with a second pass.
            for (i, col) in cell.cols.iter_mut().enumerate() {
                let (Some(lo), Some(hi)) = (
                    col.min.as_ref().and_then(value_to_f64),
                    col.max.as_ref().and_then(value_to_f64),
                ) else {
                    continue;
                };
                let mut h = Histogram::new(lo, hi);
                for r in records {
                    match r.values.get(i) {
                        Some(Value::Null) | None => {}
                        Some(v) => {
                            if let Some(x) = value_to_f64(v) {
                                h.add(x, 1);
                            }
                        }
                    }
                }
                col.hist = Some(h);
            }
            let before = Self::read_cell(ctx.services(), &inst.desc)?;
            self.log_and_install(ctx, rd, inst, &before, &Some(cell))?;
        }
        Ok(!instances.is_empty())
    }

    fn storage_files(&self, inst_desc: &[u8]) -> Vec<FileId> {
        match StatsDesc::decode(inst_desc) {
            Ok(d) => vec![d.file],
            Err(_) => Vec::new(),
        }
    }

    /// Statistics are rebuilt from the base relation through the
    /// ordinary registration path (create + backfill); the histogram
    /// stays absent until the next `ANALYZE TABLE`.
    fn reconstruct_params(&self, _rd: &RelationDescriptor, _inst_desc: &[u8]) -> Result<AttrList> {
        Ok(AttrList::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        use dmx_types::ColumnDef;
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("score", DataType::Float),
        ])
        .unwrap()
    }

    fn rec(id: i64, name: &str, score: Option<f64>) -> Record {
        Record::new(vec![
            Value::Int(id),
            Value::Str(name.into()),
            score.map(Value::Float).unwrap_or(Value::Null),
        ])
    }

    #[test]
    fn cell_tracks_numeric_fields_only() {
        let mut cell = StatsCell::new(&schema());
        assert!(cell.cols[0].tracked && !cell.cols[1].tracked && cell.cols[2].tracked);
        for i in 0..10 {
            cell.apply(
                &rec(i % 3, "x", if i % 2 == 0 { Some(i as f64) } else { None }),
                1,
            );
        }
        assert_eq!(cell.rows, 10);
        assert_eq!(cell.cols[2].nulls, 5);
        let ts = cell.to_table_stats();
        assert_eq!(ts.rows, 10);
        assert!(ts.columns[1].is_none());
        let id = ts.columns[0].as_ref().unwrap();
        assert_eq!(id.min, Some(Value::Int(0)));
        assert_eq!(id.max, Some(Value::Int(2)));
        assert_eq!(id.distinct, 3, "linear counting is exact this small");
    }

    #[test]
    fn deletes_keep_counts_exact_and_bounds_widen_only() {
        let mut cell = StatsCell::new(&schema());
        cell.apply(&rec(1, "a", Some(1.0)), 1);
        cell.apply(&rec(100, "b", None), 1);
        cell.apply(&rec(100, "b", None), -1);
        assert_eq!(cell.rows, 1);
        assert_eq!(cell.cols[2].nulls, 0);
        // min/max and the sketch do not shrink under deletes
        assert_eq!(cell.cols[0].max, Some(Value::Int(100)));
        assert!(cell.to_table_stats().columns[0].as_ref().unwrap().distinct >= 1);
    }

    #[test]
    fn cell_roundtrips_through_encoding() {
        let mut cell = StatsCell::new(&schema());
        for i in 0..50 {
            cell.apply(&rec(i, "n", Some(i as f64 * 0.5)), 1);
        }
        cell.cols[0].hist = Some({
            let mut h = Histogram::new(0.0, 49.0);
            for i in 0..50 {
                h.add(i as f64, 1);
            }
            h
        });
        let decoded = decode_cell(&encode_cell(&cell)).unwrap();
        assert_eq!(decoded, cell);
        // image pair roundtrip, including the absent case
        let (b, a) = decode_images(&encode_images(&None, &Some(cell.clone()))).unwrap();
        assert_eq!(b, None);
        assert_eq!(a, Some(cell));
        assert!(decode_cell(&[1, 2, 3]).is_err());
    }

    #[test]
    fn distinct_estimate_saturates_to_rows() {
        let mut sketch = [0u8; SKETCH_BYTES];
        for i in 0..5 {
            sketch_insert(&mut sketch, &Value::Int(i));
        }
        let est = distinct_estimate(&sketch, 1000);
        assert!((4..=6).contains(&est), "{est}");
        let full = [0xFFu8; SKETCH_BYTES];
        assert_eq!(distinct_estimate(&full, 1000), 1000);
        assert_eq!(distinct_estimate(&sketch, 0), 0);
    }

    #[test]
    fn same_stream_yields_identical_cells() {
        let build = || {
            let mut cell = StatsCell::new(&schema());
            for i in 0..200 {
                cell.apply(&rec(i % 17, "s", Some((i % 7) as f64)), 1);
                if i % 3 == 0 {
                    cell.apply(&rec(i % 17, "s", Some((i % 7) as f64)), -1);
                }
            }
            encode_cell(&cell)
        };
        assert_eq!(build(), build(), "deterministic maintenance");
    }
}
