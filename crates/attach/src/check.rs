//! Single-record (intra-record) integrity constraints.
//!
//! The paper: "A simple integrity constraint extension descriptor would
//! contain a (Common Service) encoding of the predicate to be tested when
//! records of the relation are inserted or updated." Violations **veto**
//! the modification. In `mode=deferred` the check is queued on the
//! deferred-action queue for the "before transaction enters prepared
//! state" event instead: the record is re-fetched and tested once, after
//! all of the transaction's modifications have been made.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use dmx_core::{Attachment, AttachmentInstance, CommonServices, ExecCtx, RelationDescriptor};
use dmx_expr::{decode_expr, encode_expr, expr_from_hex, Expr};
use dmx_txn::TxnEvent;
use dmx_types::{AttrList, DmxError, Lsn, Record, RecordKey, Result, Schema};

/// The CHECK-constraint attachment type.
pub struct CheckConstraint;

/// Instance descriptor: mode byte + encoded predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckDesc {
    pub deferred: bool,
    pub expr: Expr,
}

impl CheckDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = vec![self.deferred as u8];
        v.extend_from_slice(&encode_expr(&self.expr));
        v
    }

    pub fn decode(b: &[u8]) -> Result<CheckDesc> {
        let (&mode, rest) = b
            .split_first()
            .ok_or_else(|| DmxError::Corrupt("empty check descriptor".into()))?;
        Ok(CheckDesc {
            deferred: mode != 0,
            expr: decode_expr(rest)?,
        })
    }
}

/// Builds the DDL attribute list for a check constraint (callers that
/// have an [`Expr`] in hand; the SQL layer produces the same shape).
pub fn check_params(expr: &Expr, deferred: bool) -> Result<AttrList> {
    AttrList::from_pairs([
        ("expr_hex", dmx_expr::expr_to_hex(expr)),
        ("deferred", deferred.to_string()),
    ])
}

impl CheckConstraint {
    fn parse(params: &AttrList, schema: &Schema) -> Result<CheckDesc> {
        params.check_allowed(&["expr_hex", "deferred"], "check constraint")?;
        let expr = expr_from_hex(params.require("expr_hex", "check constraint")?)?;
        // columns must exist
        for c in dmx_expr::columns(&expr) {
            schema.column(c)?;
        }
        Ok(CheckDesc {
            deferred: params.get_bool("deferred", false)?,
            expr,
        })
    }

    fn test_record(
        &self,
        ctx: &ExecCtx<'_>,
        inst: &AttachmentInstance,
        record: &Record,
    ) -> Result<()> {
        let d = CheckDesc::decode(&inst.desc)?;
        if ctx.eval_predicate(&d.expr, &record.values)? {
            Ok(())
        } else {
            Err(DmxError::veto(
                self.name(),
                format!("check constraint '{}' violated", inst.name),
            ))
        }
    }

    /// Queues a deferred re-check of `(relation, key)` at before-prepare.
    fn defer_check(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        key: &RecordKey,
    ) {
        let db = ctx.db.clone();
        let txn = Arc::downgrade(ctx.txn);
        let rel = rd.id;
        let key = key.clone();
        let desc = inst.desc.clone();
        let name = inst.name.clone();
        // once per (instance, record) per transaction
        let mut h = DefaultHasher::new();
        (rel, &name, key.as_bytes()).hash(&mut h);
        ctx.txn.defer_once(
            TxnEvent::BeforePrepare,
            h.finish(),
            Box::new(move || {
                let Some(txn) = txn.upgrade() else {
                    return Ok(());
                };
                let d = CheckDesc::decode(&desc)?;
                // the record may have been deleted since: then there is
                // nothing to check
                let Some(values) = db.fetch(&txn, rel, &key, None, None)? else {
                    return Ok(());
                };
                let funcs = db.services().funcs.read();
                let ok =
                    dmx_expr::eval_predicate(&d.expr, &values, dmx_expr::EvalContext::new(&funcs))?;
                if ok {
                    Ok(())
                } else {
                    Err(DmxError::ConstraintViolation(format!(
                        "deferred check constraint '{name}' violated"
                    )))
                }
            }),
        );
    }

    fn handle(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        record: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = CheckDesc::decode(&inst.desc)?;
            if d.deferred {
                self.defer_check(ctx, rd, inst, key);
            } else {
                self.test_record(ctx, inst, record)?;
            }
        }
        Ok(())
    }
}

impl Attachment for CheckConstraint {
    fn name(&self) -> &str {
        "check"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        Self::parse(params, schema).map(|_| ())
    }

    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        Ok(Self::parse(params, &rd.schema)?.encode())
    }

    fn destroy_instance(&self, _services: &Arc<CommonServices>, _inst_desc: &[u8]) -> Result<()> {
        Ok(()) // constraints have no associated storage
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        self.handle(ctx, rd, instances, key, new)
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        _old_key: &RecordKey,
        new_key: &RecordKey,
        _old: &Record,
        new: &Record,
    ) -> Result<()> {
        self.handle(ctx, rd, instances, new_key, new)
    }

    fn on_delete(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _instances: &[AttachmentInstance],
        _key: &RecordKey,
        _old: &Record,
    ) -> Result<()> {
        Ok(()) // deleting a record cannot violate an intra-record predicate
    }

    fn undo(
        &self,
        _services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        _lsn: Lsn,
        _op: u8,
        _payload: &[u8],
    ) -> Result<()> {
        Ok(()) // checks have no state to undo
    }
}
