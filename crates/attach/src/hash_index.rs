//! The hash-table access path.
//!
//! Equality-only: entries are organized by a 64-bit hash of the indexed
//! field values (`hash ∥ enc(values) ∥ record_key`), so only exact-match
//! probes are supported — the architecturally interesting part is the
//! *relevance determination*: [`HashIndex::estimate`] recognizes only
//! equality predicates over **all** indexed fields, and reports itself
//! irrelevant to ranges (the paper: each access path "can determine the
//! relevance of the predicates to the access path instance").

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Bound;
use std::sync::Arc;

use dmx_btree::{BTree, OnDuplicate};
use dmx_core::{
    AccessPath, AccessQuery, Attachment, AttachmentInstance, CommonServices, Cost, ExecCtx,
    PathChoice, RelationDescriptor, ScanItem, ScanOps,
};
use dmx_expr::{analyze, Expr, SargOp};
use dmx_types::{
    key::encode_values, AttrList, DmxError, FieldId, FileId, Lsn, PageId, Record, RecordKey,
    Result, Schema, Value,
};

use crate::common::{
    decode_att_payload, encode_att_payload, field_values, log_att, parse_fields, prefix_successor,
    read_u16, read_u32, tail, A_DELETE, A_INSERT,
};

/// The hash-index attachment type.
pub struct HashIndex;

/// Instance descriptor: file + root + field list.
#[derive(Debug, Clone, PartialEq)]
pub struct HashDesc {
    pub file: FileId,
    pub root_page: u32,
    pub fields: Vec<FieldId>,
}

impl HashDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(10 + self.fields.len() * 2);
        v.extend_from_slice(&self.file.0.to_le_bytes());
        v.extend_from_slice(&self.root_page.to_le_bytes());
        v.extend_from_slice(&(self.fields.len() as u16).to_le_bytes());
        for f in &self.fields {
            v.extend_from_slice(&f.to_le_bytes());
        }
        v
    }

    pub fn decode(b: &[u8]) -> Result<HashDesc> {
        const WHAT: &str = "hash descriptor";
        let file = FileId(read_u32(b, 0, WHAT)?);
        let root_page = read_u32(b, 4, WHAT)?;
        let n = read_u16(b, 8, WHAT)? as usize;
        let mut fields = Vec::with_capacity(n);
        for i in 0..n {
            fields.push(read_u16(b, 10 + 2 * i, WHAT)?);
        }
        Ok(HashDesc {
            file,
            root_page,
            fields,
        })
    }
}

fn hash_bytes(values_enc: &[u8]) -> [u8; 8] {
    let mut h = DefaultHasher::new();
    values_enc.hash(&mut h);
    h.finish().to_be_bytes()
}

/// `hash ∥ enc(values)` — the probe prefix.
fn probe_prefix(values_enc: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + values_enc.len());
    v.extend_from_slice(&hash_bytes(values_enc));
    v.extend_from_slice(values_enc);
    v
}

impl HashIndex {
    fn tree(services: &Arc<CommonServices>, d: &HashDesc) -> BTree {
        BTree::open(
            &services.pool,
            PageId::new(d.file, d.root_page),
            &services.latches,
        )
    }

    fn entry_key(d: &HashDesc, record: &Record, rkey: &RecordKey) -> Result<Vec<u8>> {
        let enc = encode_values(&field_values(record, &d.fields)?);
        let mut full = probe_prefix(&enc);
        full.extend_from_slice(rkey.as_bytes());
        Ok(full)
    }

    fn type_id(rd: &RelationDescriptor, inst: &AttachmentInstance) -> dmx_types::AttTypeId {
        rd.attached_types()
            .find(|(_, insts)| {
                insts
                    .iter()
                    .any(|i| i.instance == inst.instance && i.name == inst.name)
            })
            .map(|(t, _)| t)
            .unwrap_or_default()
    }
}

impl Attachment for HashIndex {
    fn name(&self) -> &str {
        "hash"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        params.check_allowed(&["fields"], "hash index")?;
        parse_fields(params, "fields", "hash index", schema).map(|_| ())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let fields = parse_fields(params, "fields", "hash index", &rd.schema)?;
        let services = ctx.services();
        let file = services.disk.create_file()?;
        let tree = BTree::create(&services.pool, file, &services.latches)?;
        Ok(HashDesc {
            file,
            root_page: tree.root().page_no,
            fields,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()> {
        let d = HashDesc::decode(inst_desc)?;
        services.latches.forget(PageId::new(d.file, d.root_page));
        services.pool.discard_file(d.file);
        services.disk.delete_file(d.file)
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = HashDesc::decode(&inst.desc)?;
            let full = Self::entry_key(&d, new, key)?;
            // Log first, then apply with the LSN stamped onto dirtied
            // pages so the entry cannot reach disk before its log record.
            let lsn = log_att(
                ctx,
                rd,
                Self::type_id(rd, inst),
                A_INSERT,
                encode_att_payload(&inst.desc, &full, key.as_bytes()),
            );
            Self::tree(ctx.services(), &d).with_wal_lsn(lsn).insert(
                &full,
                key.as_bytes(),
                OnDuplicate::Error,
            )?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        old_key: &RecordKey,
        new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = HashDesc::decode(&inst.desc)?;
            let old_full = Self::entry_key(&d, old, old_key)?;
            let new_full = Self::entry_key(&d, new, new_key)?;
            if old_full == new_full {
                continue;
            }
            let tree = Self::tree(ctx.services(), &d);
            if tree.get(&old_full)?.is_some() {
                let lsn = log_att(
                    ctx,
                    rd,
                    Self::type_id(rd, inst),
                    A_DELETE,
                    encode_att_payload(&inst.desc, &old_full, old_key.as_bytes()),
                );
                tree.clone().with_wal_lsn(lsn).delete(&old_full)?;
            }
            let lsn = log_att(
                ctx,
                rd,
                Self::type_id(rd, inst),
                A_INSERT,
                encode_att_payload(&inst.desc, &new_full, new_key.as_bytes()),
            );
            tree.with_wal_lsn(lsn)
                .insert(&new_full, new_key.as_bytes(), OnDuplicate::Error)?;
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = HashDesc::decode(&inst.desc)?;
            let full = Self::entry_key(&d, old, key)?;
            let tree = Self::tree(ctx.services(), &d);
            if tree.get(&full)?.is_some() {
                let lsn = log_att(
                    ctx,
                    rd,
                    Self::type_id(rd, inst),
                    A_DELETE,
                    encode_att_payload(&inst.desc, &full, key.as_bytes()),
                );
                tree.with_wal_lsn(lsn).delete(&full)?;
            }
        }
        Ok(())
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, key, extra) = decode_att_payload(payload)?;
        let d = HashDesc::decode(desc)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        match op {
            A_INSERT => {
                tree.delete(key)?;
            }
            A_DELETE => {
                tree.insert(key, extra, OnDuplicate::Replace)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad hash op {other}"))),
        }
        Ok(())
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, key, extra) = decode_att_payload(payload)?;
        let d = HashDesc::decode(desc)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        // Forward mirror of undo; idempotent by construction.
        match op {
            A_INSERT => {
                tree.insert(key, extra, OnDuplicate::Replace)?;
            }
            A_DELETE => {
                tree.delete(key)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad hash op {other}"))),
        }
        Ok(())
    }

    fn supports_access(&self) -> bool {
        true
    }

    fn storage_files(&self, inst_desc: &[u8]) -> Vec<FileId> {
        HashDesc::decode(inst_desc)
            .map(|d| vec![d.file])
            .unwrap_or_default()
    }

    fn reconstruct_params(&self, rd: &RelationDescriptor, inst_desc: &[u8]) -> Result<AttrList> {
        let d = HashDesc::decode(inst_desc)?;
        let names: Vec<&str> = d
            .fields
            .iter()
            .map(|&f| rd.schema.column(f).map(|c| c.name.as_str()))
            .collect::<Result<_>>()?;
        AttrList::from_pairs([("fields".to_string(), names.join(","))])
    }

    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        query: &AccessQuery,
    ) -> Result<Box<dyn ScanOps>> {
        let d = HashDesc::decode(&instance.desc)?;
        let tree = Self::tree(ctx.services(), &d);
        let prefix = match query {
            AccessQuery::KeyEquals(values_enc) => probe_prefix(values_enc),
            _ => {
                return Err(DmxError::Unsupported(
                    "hash index supports only exact-key probes".into(),
                ))
            }
        };
        let hi = match prefix_successor(&prefix) {
            Some(s) => Bound::Excluded(s),
            None => Bound::Unbounded,
        };
        Ok(Box::new(HashScan {
            tree,
            lo: Bound::Included(prefix),
            hi,
            nfields: d.fields.len(),
            after: None,
        }))
    }

    fn estimate(
        &self,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        preds: &[Expr],
    ) -> Option<PathChoice> {
        let d = HashDesc::decode(&instance.desc).ok()?;
        // relevant only when EVERY indexed field has an equality predicate
        let sargs: Vec<_> = preds.iter().filter_map(analyze::sargable).collect();
        let mut values: Vec<Value> = Vec::with_capacity(d.fields.len());
        let mut applied = Vec::new();
        for &f in &d.fields {
            let found = sargs
                .iter()
                .find(|s| s.field == f && matches!(s.op, SargOp::Eq(_)))?;
            if let SargOp::Eq(v) = &found.op {
                values.push(v.clone());
            }
            // map back to the predicate
            applied.push(
                preds
                    .iter()
                    .find(|p| analyze::sargable(p).as_ref() == Some(found))?
                    .clone(),
            );
        }
        let enc = encode_values(&values);
        let records = rd.stats.records();
        // Matched fraction from maintained statistics when they cover
        // every hashed field; the flat 1% guess otherwise.
        let ts = rd.stats.table_stats();
        let frac: f64 = d
            .fields
            .iter()
            .zip(&values)
            .map(|(&f, v)| dmx_expr::sarg_fraction(f, &SargOp::Eq(v.clone()), ts.as_deref()))
            .product::<Option<f64>>()
            .unwrap_or(0.01);
        let rows = (records as f64 * frac).max(1.0);
        Some(PathChoice {
            path: AccessPath::Attachment(Self::type_id(rd, instance), instance.instance),
            query: AccessQuery::KeyEquals(enc),
            // a hash probe is ~1–2 page touches regardless of size
            cost: Cost::new(1.5, rows),
            rows_out: rows,
            covered: Some(d.fields.clone()),
            applied,
            ordering: None, // hash order is meaningless
        })
    }
}

struct HashScan {
    tree: BTree,
    lo: Bound<Vec<u8>>,
    hi: Bound<Vec<u8>>,
    nfields: usize,
    after: Option<Vec<u8>>,
}

impl ScanOps for HashScan {
    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let bound = match &self.after {
            Some(k) => Bound::Excluded(k.as_slice()),
            None => match &self.lo {
                Bound::Included(b) => Bound::Included(b.as_slice()),
                Bound::Excluded(b) => Bound::Excluded(b.as_slice()),
                Bound::Unbounded => Bound::Unbounded,
            },
        };
        let Some((key, value)) = self.tree.seek(bound)? else {
            return Ok(None);
        };
        let in_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => key <= *h,
            Bound::Excluded(h) => key < *h,
        };
        if !in_hi {
            return Ok(None);
        }
        // key = hash(8) ∥ enc(values) ∥ record_key: the indexed values are
        // recoverable, so the probe covers them.
        let covered =
            dmx_types::key::decode_values(tail(&key, 8, "hash index key")?, self.nfields)?;
        self.after = Some(key);
        Ok(Some(ScanItem {
            key: RecordKey::new(value),
            values: Some(covered),
        }))
    }

    fn save_position(&self) -> Vec<u8> {
        crate::common_position::encode(self.after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = crate::common_position::decode(pos)?;
        Ok(())
    }
}
