//! The join index (Valduriez '85).
//!
//! "Access paths need not be limited to a single table (e.g., join
//! indexes)." A join index materializes the pairs of record keys whose
//! records join: `R ⋈ S` becomes a scan of precomputed `(r_key, s_key)`
//! pairs. One link = **two instances** of this type, one per relation
//! (the dispatcher invokes attachments of the modified relation only, so
//! both sides must carry an instance to keep the pairs current). The
//! instances share three B-trees, created by the first (`side=left`) and
//! adopted by the second (`side=right, other=<left relation>`):
//!
//! * `pairs`:  `enc(v) ∥ lkey ∥ rkey → [len(lkey)] lkey rkey`
//! * `left`:   `enc(v) ∥ lkey → lkey` (left records by join value)
//! * `right`:  `enc(v) ∥ rkey → rkey`
//!
//! Maintenance on either side is: update the side tree, then pair with
//! every matching key from the opposite side tree.

use std::ops::Bound;
use std::sync::Arc;

use dmx_btree::{BTree, OnDuplicate};
use dmx_core::{
    AccessQuery, Attachment, AttachmentInstance, CommonServices, ExecCtx, RelationDescriptor,
    ScanItem, ScanOps,
};
use dmx_types::{
    key::encode_values, AttrList, DmxError, FieldId, FileId, Lsn, PageId, Record, RecordKey,
    Result, Schema, Value,
};

use crate::common::{
    decode_att_payload, encode_att_payload, field_values, log_att, parse_fields, prefix_successor,
    read_u16, read_u32, tail, A_DELETE, A_INSERT,
};

/// The join-index attachment type.
pub struct JoinIndex;

const TREE_PAIRS: u8 = 0;
const TREE_LEFT: u8 = 1;
const TREE_RIGHT: u8 = 2;

/// Instance descriptor (mirrored on both relations, differing only in
/// `is_left` and `fields`).
#[derive(Debug, Clone, PartialEq)]
pub struct JiDesc {
    pub is_left: bool,
    pub fields: Vec<FieldId>,
    /// (file, root) for pairs / left / right trees.
    pub trees: [(FileId, u32); 3],
}

impl JiDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = vec![self.is_left as u8];
        v.extend_from_slice(&(self.fields.len() as u16).to_le_bytes());
        for f in &self.fields {
            v.extend_from_slice(&f.to_le_bytes());
        }
        for (file, root) in &self.trees {
            v.extend_from_slice(&file.0.to_le_bytes());
            v.extend_from_slice(&root.to_le_bytes());
        }
        v
    }

    pub fn decode(b: &[u8]) -> Result<JiDesc> {
        const WHAT: &str = "join-index descriptor";
        let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
        let is_left = *b.first().ok_or_else(corrupt)? != 0;
        let n = read_u16(b, 1, WHAT)? as usize;
        let mut pos = 3usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            fields.push(read_u16(b, pos, WHAT)?);
            pos += 2;
        }
        let mut trees = [(FileId(0), 0u32); 3];
        for t in &mut trees {
            *t = (FileId(read_u32(b, pos, WHAT)?), read_u32(b, pos + 4, WHAT)?);
            pos += 8;
        }
        Ok(JiDesc {
            is_left,
            fields,
            trees,
        })
    }
}

fn encode_pair_value(lkey: &[u8], rkey: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(2 + lkey.len() + rkey.len());
    v.extend_from_slice(&(lkey.len() as u16).to_le_bytes());
    v.extend_from_slice(lkey);
    v.extend_from_slice(rkey);
    v
}

fn decode_pair_value(v: &[u8]) -> Result<(&[u8], &[u8])> {
    let n = read_u16(v, 0, "pair value")? as usize;
    let lkey = v
        .get(2..2 + n)
        .ok_or_else(|| DmxError::Corrupt("short pair value".into()))?;
    Ok((lkey, tail(v, 2 + n, "pair value")?))
}

impl JoinIndex {
    fn tree(services: &Arc<CommonServices>, d: &JiDesc, which: u8) -> BTree {
        let (file, root) = d.trees[which as usize];
        BTree::open(&services.pool, PageId::new(file, root), &services.latches)
    }

    fn type_id(rd: &RelationDescriptor, inst: &AttachmentInstance) -> dmx_types::AttTypeId {
        rd.attached_types()
            .find(|(_, insts)| {
                insts
                    .iter()
                    .any(|i| i.instance == inst.instance && i.name == inst.name)
            })
            .map(|(t, _)| t)
            .unwrap_or_default()
    }

    // Internal helper mirroring the log-record payload; splitting the
    // argument list into a struct would only restate `JiDesc`.
    #[allow(clippy::too_many_arguments)]
    fn logged_insert(
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        att: dmx_types::AttTypeId,
        desc: &[u8],
        d: &JiDesc,
        which: u8,
        key: &[u8],
        value: &[u8],
    ) -> Result<()> {
        // Log first, then apply with the LSN stamped onto dirtied pages
        // so the entry cannot reach disk before its log record.
        let mut extra = vec![which];
        extra.extend_from_slice(value);
        let lsn = log_att(
            ctx,
            rd,
            att,
            A_INSERT,
            encode_att_payload(desc, key, &extra),
        );
        Self::tree(ctx.services(), d, which)
            .with_wal_lsn(lsn)
            .insert(key, value, OnDuplicate::Replace)?;
        Ok(())
    }

    fn logged_delete(
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        att: dmx_types::AttTypeId,
        desc: &[u8],
        d: &JiDesc,
        which: u8,
        key: &[u8],
    ) -> Result<()> {
        let tree = Self::tree(ctx.services(), d, which);
        if let Some(old) = tree.get(key)? {
            let mut extra = vec![which];
            extra.extend_from_slice(&old);
            let lsn = log_att(
                ctx,
                rd,
                att,
                A_DELETE,
                encode_att_payload(desc, key, &extra),
            );
            tree.with_wal_lsn(lsn).delete(key)?;
        }
        Ok(())
    }

    /// Keys in `tree` with prefix `p`, with their values.
    fn prefix_entries(
        services: &Arc<CommonServices>,
        d: &JiDesc,
        which: u8,
        p: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let tree = Self::tree(services, d, which);
        let hi = match prefix_successor(p) {
            Some(s) => Bound::Excluded(s),
            None => Bound::Unbounded,
        };
        let mut cur = tree.range(Bound::Included(p.to_vec()), hi);
        let mut out = Vec::new();
        while let Some(kv) = cur.next()? {
            out.push(kv);
        }
        Ok(out)
    }

    /// Maintains the index after a record appears on one side.
    fn side_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        key: &RecordKey,
        record: &Record,
    ) -> Result<()> {
        let d = JiDesc::decode(&inst.desc)?;
        let att = Self::type_id(rd, inst);
        let values = field_values(record, &d.fields)?;
        if values.iter().any(|v| v.is_null()) {
            return Ok(()); // NULL join values never match
        }
        let v = encode_values(&values);
        let (my_tree, other_tree) = if d.is_left {
            (TREE_LEFT, TREE_RIGHT)
        } else {
            (TREE_RIGHT, TREE_LEFT)
        };
        // 1. register this key under its join value
        let mut my_key = v.clone();
        my_key.extend_from_slice(key.as_bytes());
        Self::logged_insert(
            ctx,
            rd,
            att,
            &inst.desc,
            &d,
            my_tree,
            &my_key,
            key.as_bytes(),
        )?;
        // 2. pair with every matching key on the other side
        for (_, other_key) in Self::prefix_entries(ctx.services(), &d, other_tree, &v)? {
            let (lkey, rkey) = if d.is_left {
                (key.as_bytes(), other_key.as_slice())
            } else {
                (other_key.as_slice(), key.as_bytes())
            };
            let mut pair_key = v.clone();
            pair_key.extend_from_slice(lkey);
            pair_key.extend_from_slice(rkey);
            Self::logged_insert(
                ctx,
                rd,
                att,
                &inst.desc,
                &d,
                TREE_PAIRS,
                &pair_key,
                &encode_pair_value(lkey, rkey),
            )?;
        }
        Ok(())
    }

    /// Maintains the index after a record disappears from one side.
    fn side_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        key: &RecordKey,
        record: &Record,
    ) -> Result<()> {
        let d = JiDesc::decode(&inst.desc)?;
        let att = Self::type_id(rd, inst);
        let values = field_values(record, &d.fields)?;
        if values.iter().any(|v| v.is_null()) {
            return Ok(());
        }
        let v = encode_values(&values);
        let my_tree = if d.is_left { TREE_LEFT } else { TREE_RIGHT };
        let mut my_key = v.clone();
        my_key.extend_from_slice(key.as_bytes());
        Self::logged_delete(ctx, rd, att, &inst.desc, &d, my_tree, &my_key)?;
        // drop every pair involving this key
        for (pair_key, pair_val) in Self::prefix_entries(ctx.services(), &d, TREE_PAIRS, &v)? {
            let (lkey, rkey) = decode_pair_value(&pair_val)?;
            let mine = if d.is_left { lkey } else { rkey };
            if mine == key.as_bytes() {
                Self::logged_delete(ctx, rd, att, &inst.desc, &d, TREE_PAIRS, &pair_key)?;
            }
        }
        Ok(())
    }
}

impl Attachment for JoinIndex {
    fn name(&self) -> &str {
        "joinindex"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        params.check_allowed(&["side", "fields", "other"], "join index")?;
        let side = params.require("side", "join index")?;
        if !side.eq_ignore_ascii_case("left") && !side.eq_ignore_ascii_case("right") {
            return Err(DmxError::InvalidArg(
                "join index side must be left|right".into(),
            ));
        }
        if side.eq_ignore_ascii_case("right") && params.get("other").is_none() {
            return Err(DmxError::InvalidArg(
                "join index right side requires other=<left relation>".into(),
            ));
        }
        parse_fields(params, "fields", "join index", schema).map(|_| ())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let fields = parse_fields(params, "fields", "join index", &rd.schema)?;
        let is_left = params
            .require("side", "join index")?
            .eq_ignore_ascii_case("left");
        let trees = if is_left {
            // the left side creates the shared structures
            let services = ctx.services();
            let mut trees = [(FileId(0), 0u32); 3];
            for t in &mut trees {
                let file = services.disk.create_file()?;
                let tree = BTree::create(&services.pool, file, &services.latches)?;
                *t = (file, tree.root().page_no);
            }
            trees
        } else {
            // the right side adopts the trees from the left instance
            // (looked up by attachment name on the other relation)
            let other = params.require("other", "join index")?;
            let other_rd = ctx.db.catalog().get_by_name(other)?;
            let (_, left_inst) = other_rd.find_attachment(name).ok_or_else(|| {
                DmxError::NotFound(format!(
                    "join index '{name}' not found on relation {other} (create the left side first, with the same name)"
                ))
            })?;
            JiDesc::decode(&left_inst.desc)?.trees
        };
        Ok(JiDesc {
            is_left,
            fields,
            trees,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()> {
        let d = JiDesc::decode(inst_desc)?;
        // only the left (creator) side owns the physical trees
        if d.is_left {
            for (file, root) in d.trees {
                services.latches.forget(PageId::new(file, root));
                services.pool.discard_file(file);
                match services.disk.delete_file(file) {
                    Err(DmxError::NotFound(_)) | Ok(()) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.side_insert(ctx, rd, inst, key, new)?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        old_key: &RecordKey,
        new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = JiDesc::decode(&inst.desc)?;
            let old_v = field_values(old, &d.fields)?;
            let new_v = field_values(new, &d.fields)?;
            if old_v == new_v && old_key == new_key {
                continue;
            }
            self.side_delete(ctx, rd, inst, old_key, old)?;
            self.side_insert(ctx, rd, inst, new_key, new)?;
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.side_delete(ctx, rd, inst, key, old)?;
        }
        Ok(())
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, key, extra) = decode_att_payload(payload)?;
        let d = JiDesc::decode(desc)?;
        let (&which, value) = extra
            .split_first()
            .ok_or_else(|| DmxError::Corrupt("short join-index undo".into()))?;
        let tree = Self::tree(services, &d, which).with_wal_lsn(lsn);
        match op {
            A_INSERT => {
                tree.delete(key)?;
            }
            A_DELETE => {
                tree.insert(key, value, OnDuplicate::Replace)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad join-index op {other}"))),
        }
        Ok(())
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, key, extra) = decode_att_payload(payload)?;
        let d = JiDesc::decode(desc)?;
        let (&which, value) = extra
            .split_first()
            .ok_or_else(|| DmxError::Corrupt("short join-index redo".into()))?;
        let tree = Self::tree(services, &d, which).with_wal_lsn(lsn);
        // Forward mirror of undo; idempotent by construction.
        match op {
            A_INSERT => {
                tree.insert(key, value, OnDuplicate::Replace)?;
            }
            A_DELETE => {
                tree.delete(key)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad join-index op {other}"))),
        }
        Ok(())
    }

    fn supports_access(&self) -> bool {
        true
    }

    /// Scans the materialized pairs: each item carries the **left**
    /// record key as `key` and `[Bytes(right record key), join value]`
    /// as values — the query layer's join-index join strategy consumes
    /// this shape.
    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        query: &AccessQuery,
    ) -> Result<Box<dyn ScanOps>> {
        let d = JiDesc::decode(&instance.desc)?;
        if !matches!(query, AccessQuery::All) {
            return Err(DmxError::Unsupported(
                "join index serves full pair scans".into(),
            ));
        }
        let tree = Self::tree(ctx.services(), &d, TREE_PAIRS);
        Ok(Box::new(PairScan {
            cursor_after: None,
            tree,
        }))
    }
}

struct PairScan {
    tree: BTree,
    cursor_after: Option<Vec<u8>>,
}

impl ScanOps for PairScan {
    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let bound = match &self.cursor_after {
            Some(k) => Bound::Excluded(k.as_slice()),
            None => Bound::Unbounded,
        };
        let Some((key, value)) = self.tree.seek(bound)? else {
            return Ok(None);
        };
        self.cursor_after = Some(key);
        let (lkey, rkey) = decode_pair_value(&value)?;
        Ok(Some(ScanItem {
            key: RecordKey::new(lkey.to_vec()),
            values: Some(vec![Value::Bytes(rkey.to_vec())]),
        }))
    }

    fn save_position(&self) -> Vec<u8> {
        crate::common_position::encode(self.cursor_after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.cursor_after = crate::common_position::decode(pos)?;
        Ok(())
    }
}
