//! Attachment extensions.
//!
//! Each module implements the [`dmx_core::Attachment`] generic interface
//! for one attachment type from the paper's list ("B-tree indexes, hash
//! tables, join indexes, single record integrity constraints, and
//! referential integrity constraints … in principle any type of
//! attachment can be applied to any type of relation"):
//!
//! * [`btree_index`] — the classic secondary index (the paper's worked
//!   example), with unique-constraint vetoes and covering scans;
//! * [`hash_index`] — equality-only access path (relevance
//!   determination rejects range predicates);
//! * [`rtree`] — Guttman R-tree for spatial data, recognizing the
//!   `ENCLOSES` predicate in cost estimation;
//! * [`join_index`] — Valduriez join index spanning two relations;
//! * [`check`] — single-record integrity constraints (immediate veto or
//!   deferred to "before prepared state");
//! * [`refint`] — referential integrity with restrict / cascade delete
//!   rules (the paper's cascading-deletes example);
//! * [`trigger`] — user actions fired by modifications ("within the
//!   database or even outside");
//! * [`aggregate`] — maintained statistics / precomputed aggregates
//!   (attachments "may have associated storage");
//! * [`stats`] — maintained planner statistics (row counts, per-field
//!   null/distinct/min/max/histogram) feeding the cost-estimation
//!   interface and `sys.statistics`.
//!
//! [`register_builtin_attachments`] installs all of them "at the
//! factory".

pub mod aggregate;
pub mod btree_index;
pub mod check;
pub mod common;
pub mod common_position;
pub mod hash_index;
pub mod join_index;
pub mod refint;
pub mod rtree;
pub mod stats;
pub mod trigger;

use std::sync::Arc;

use dmx_core::ExtensionRegistry;
use dmx_types::Result;

pub use aggregate::Aggregate;
pub use btree_index::BTreeIndex;
pub use check::{check_params, CheckConstraint};
pub use hash_index::HashIndex;
pub use join_index::JoinIndex;
pub use refint::RefIntegrity;
pub use rtree::{RTree, RTreeIndex};
pub use stats::Stats;
pub use trigger::Trigger;

/// Registers the built-in attachment types.
pub fn register_builtin_attachments(registry: &ExtensionRegistry) -> Result<()> {
    registry.register_attachment(Arc::new(BTreeIndex))?;
    registry.register_attachment(Arc::new(HashIndex))?;
    registry.register_attachment(Arc::new(RTreeIndex))?;
    registry.register_attachment(Arc::new(JoinIndex))?;
    registry.register_attachment(Arc::new(CheckConstraint))?;
    registry.register_attachment(Arc::new(RefIntegrity))?;
    registry.register_attachment(Arc::new(Trigger))?;
    registry.register_attachment(Arc::new(Aggregate))?;
    registry.register_attachment(Arc::new(Stats))?;
    Ok(())
}
