//! The R-tree spatial access path (Guttman '84).
//!
//! The paper's motivating example: "spatial database applications can
//! make use of an R-tree access path to efficiently compute certain
//! spatial predicates", and its cost-estimation example: "the R-tree
//! access path will recognize the ENCLOSES predicate and report a low
//! cost."
//!
//! Nodes are slotted pages; inner entries are `(bounding rect, child
//! page)`, leaf entries `(rect, record key)`. Insertion follows Guttman:
//! choose-leaf by least enlargement, quadratic split, bounding-rect
//! adjustment up the path. Deletion removes the leaf entry without
//! condensing (bounding rects stay conservative — correct, just looser).
//! The root page number is fixed for the life of the tree.

use std::sync::Arc;

use dmx_btree::{LatchTable, TreeLatch};
use dmx_core::{
    AccessPath, AccessQuery, Attachment, AttachmentInstance, CommonServices, Cost, ExecCtx,
    PathChoice, RelationDescriptor, ScanItem, ScanOps, SpatialOp,
};
use dmx_expr::{analyze, Expr, SargOp};
use dmx_page::{BufferPool, Page, SlottedPage};
use dmx_types::{
    AttrList, DmxError, FieldId, FileId, Lsn, PageId, Record, RecordKey, Rect, Result, Schema,
    Value,
};

use crate::common::{decode_att_payload, encode_att_payload, log_att, A_DELETE, A_INSERT};

/// Page type tags.
pub const PAGE_TYPE_RTREE_LEAF: u8 = 5;
pub const PAGE_TYPE_RTREE_INNER: u8 = 6;

/// Minimum fill used by the quadratic split (fraction of entries).
const MIN_FILL_DIV: usize = 4;

/// The R-tree index attachment type.
pub struct RTreeIndex;

/// Instance descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct RtDesc {
    pub file: FileId,
    pub root_page: u32,
    pub rect_field: FieldId,
}

impl RtDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(10);
        v.extend_from_slice(&self.file.0.to_le_bytes());
        v.extend_from_slice(&self.root_page.to_le_bytes());
        v.extend_from_slice(&self.rect_field.to_le_bytes());
        v
    }

    pub fn decode(b: &[u8]) -> Result<RtDesc> {
        let corrupt = || DmxError::Corrupt("short rtree descriptor".into());
        let u32_at = |off: usize| -> Result<u32> {
            b.get(off..off + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(corrupt)
        };
        let u16_at = |off: usize| -> Result<u16> {
            b.get(off..off + 2)
                .and_then(|s| s.try_into().ok())
                .map(u16::from_le_bytes)
                .ok_or_else(corrupt)
        };
        Ok(RtDesc {
            file: FileId(u32_at(0)?),
            root_page: u32_at(4)?,
            rect_field: u16_at(8)?,
        })
    }
}

// ---------------------------------------------------------------------
// node helpers (entries live in slotted pages)
// ---------------------------------------------------------------------

fn entry_rect(data: &[u8]) -> Result<Rect> {
    Rect::from_bytes(data).ok_or_else(|| DmxError::Corrupt("short rtree entry".into()))
}

fn entry_payload(data: &[u8]) -> &[u8] {
    data.get(32..).unwrap_or_else(|| {
        debug_assert!(false, "rtree entry shorter than its rect header");
        &[]
    })
}

fn make_entry(rect: &Rect, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(32 + payload.len());
    v.extend_from_slice(&rect.to_bytes());
    v.extend_from_slice(payload);
    v
}

fn child_of(data: &[u8]) -> u32 {
    match entry_payload(data).get(..4).and_then(|s| s.try_into().ok()) {
        Some(b) => u32::from_le_bytes(b),
        None => {
            debug_assert!(false, "rtree branch entry without a child pointer");
            u32::MAX
        }
    }
}

fn is_leaf(page: &Page) -> bool {
    page.page_type() == PAGE_TYPE_RTREE_LEAF
}

fn entries(page: &Page) -> Vec<Vec<u8>> {
    SlottedPage::live_slots(page)
        .into_iter()
        .filter_map(|s| SlottedPage::get(page, s).map(|d| d.to_vec()))
        .collect()
}

/// `(slot, data)` pairs for every live slot. A slot reported live whose
/// payload has vanished indicates a corrupt page; it is skipped rather
/// than panicked on.
fn live_entries(page: &Page) -> impl Iterator<Item = (u16, &[u8])> {
    SlottedPage::live_slots(page)
        .into_iter()
        .filter_map(move |s| SlottedPage::get(page, s).map(|d| (s, d)))
}

fn bounds(page: &Page) -> Result<Option<Rect>> {
    let mut acc: Option<Rect> = None;
    for (_, d) in live_entries(page) {
        let r = entry_rect(d)?;
        acc = Some(match acc {
            None => r,
            Some(a) => a.union(&r),
        });
    }
    Ok(acc)
}

/// The two entry groups produced by a node split.
type SplitGroups = (Vec<Vec<u8>>, Vec<Vec<u8>>);

/// Guttman's quadratic split: distributes `items` into two groups.
fn quadratic_split(items: Vec<Vec<u8>>) -> Result<SplitGroups> {
    let n = items.len();
    debug_assert!(n >= 2);
    let rects: Vec<Rect> = items
        .iter()
        .map(|e| entry_rect(e))
        .collect::<Result<Vec<_>>>()?;
    // pick seeds: the pair wasting the most area
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::MIN);
    for i in 0..n {
        for j in i + 1..n {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let min_fill = (n / MIN_FILL_DIV).max(1);
    let mut g1: Vec<usize> = vec![s1];
    let mut g2: Vec<usize> = vec![s2];
    let (mut r1, mut r2) = (rects[s1], rects[s2]);
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();
    while !rest.is_empty() {
        // force-assign when a group must take everything left
        if g1.len() + rest.len() <= min_fill {
            g1.append(&mut rest);
            break;
        }
        if g2.len() + rest.len() <= min_fill {
            g2.append(&mut rest);
            break;
        }
        // pick the entry with the greatest preference difference
        let (pos, _) = rest
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let d1 = r1.enlargement(&rects[i]);
                let d2 = r2.enlargement(&rects[i]);
                (pos, (d1 - d2).abs())
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, 0.0)); // rest is non-empty: position 0 exists
        let i = rest.swap_remove(pos);
        let (d1, d2) = (r1.enlargement(&rects[i]), r2.enlargement(&rects[i]));
        if d1 < d2 || (d1 == d2 && r1.area() <= r2.area()) {
            g1.push(i);
            r1 = r1.union(&rects[i]);
        } else {
            g2.push(i);
            r2 = r2.union(&rects[i]);
        }
    }
    let pick = |idx: &[usize]| idx.iter().map(|&i| items[i].clone()).collect::<Vec<_>>();
    Ok((pick(&g1), pick(&g2)))
}

fn write_entries(page: &mut Page, page_type: u8, items: &[Vec<u8>]) -> Result<()> {
    SlottedPage::init(page);
    page.set_page_type(page_type);
    for e in items {
        SlottedPage::insert(page, e)
            .ok_or_else(|| DmxError::Internal("rtree entries exceed page".into()))?;
    }
    Ok(())
}

/// A handle to one R-tree.
pub struct RTree {
    pool: Arc<BufferPool>,
    root: PageId,
    latch: Arc<TreeLatch>,
    /// When non-null, every page a mutation dirties is stamped with this
    /// LSN so the buffer pool forces the log through it before the page
    /// can reach disk (write-ahead for attachment log records).
    wal_lsn: Lsn,
}

impl RTree {
    /// Allocates a new empty tree (leaf root) in `file`.
    pub fn create(pool: &Arc<BufferPool>, file: FileId, latches: &LatchTable) -> Result<RTree> {
        let pin = pool.new_page(file)?;
        let mut page = pin.write();
        SlottedPage::init(&mut page);
        page.set_page_type(PAGE_TYPE_RTREE_LEAF);
        Ok(RTree {
            pool: pool.clone(),
            root: pin.id(),
            latch: latches.latch(pin.id()),
            wal_lsn: Lsn::NULL,
        })
    }

    /// Opens an existing tree.
    pub fn open(pool: &Arc<BufferPool>, root: PageId, latches: &LatchTable) -> RTree {
        RTree {
            pool: pool.clone(),
            root,
            latch: latches.latch(root),
            wal_lsn: Lsn::NULL,
        }
    }

    /// Returns a handle whose mutations stamp dirtied pages with `lsn`
    /// (see [`dmx_btree::BTree::with_wal_lsn`] for the protocol).
    #[must_use]
    pub fn with_wal_lsn(mut self, lsn: Lsn) -> Self {
        self.wal_lsn = lsn;
        self
    }

    /// Stamps a page this mutation dirtied (LSNs only move forward).
    fn stamp(&self, page: &mut Page) {
        if self.wal_lsn > page.lsn() {
            page.set_lsn(self.wal_lsn);
        }
    }

    /// The fixed root page.
    pub fn root(&self) -> PageId {
        self.root
    }

    fn page(&self, page_no: u32) -> Result<dmx_page::PinnedPage> {
        self.pool.fetch(PageId::new(self.root.file, page_no))
    }

    /// Inserts `(rect, payload)`.
    pub fn insert(&self, rect: &Rect, payload: &[u8]) -> Result<()> {
        let _g = self.latch.write();
        if let Some(new_page) = self.insert_rec(self.root.page_no, rect, payload)? {
            self.grow_root(new_page)?;
        }
        Ok(())
    }

    fn insert_rec(&self, page_no: u32, rect: &Rect, payload: &[u8]) -> Result<Option<u32>> {
        let pin = self.page(page_no)?;
        let leaf = is_leaf(&pin.read());
        if leaf {
            let entry = make_entry(rect, payload);
            let mut page = pin.write();
            if SlottedPage::insert(&mut page, &entry).is_some() {
                self.stamp(&mut page);
                return Ok(None);
            }
            // split
            let mut items = entries(&page);
            items.push(entry);
            let (a, b) = quadratic_split(items)?;
            write_entries(&mut page, PAGE_TYPE_RTREE_LEAF, &a)?;
            self.stamp(&mut page);
            drop(page);
            let new_pin = self.pool.new_page(self.root.file)?;
            let mut new_page = new_pin.write();
            write_entries(&mut new_page, PAGE_TYPE_RTREE_LEAF, &b)?;
            self.stamp(&mut new_page);
            return Ok(Some(new_pin.id().page_no));
        }
        // choose subtree: least enlargement, ties by area
        let (slot, child) = {
            let page = pin.read();
            let mut best: Option<(u16, u32, f64, f64)> = None;
            for (s, data) in live_entries(&page) {
                let r = entry_rect(data)?;
                let enl = r.enlargement(rect);
                let area = r.area();
                let better = match &best {
                    None => true,
                    Some((_, _, be, ba)) => enl < *be || (enl == *be && area < *ba),
                };
                if better {
                    best = Some((s, child_of(data), enl, area));
                }
            }
            let (s, c, _, _) = best.ok_or_else(|| DmxError::Corrupt("empty inner node".into()))?;
            (s, c)
        };
        let split = self.insert_rec(child, rect, payload)?;
        // refresh the child's bounding rect
        let child_bounds = {
            let cpin = self.page(child)?;
            let b = bounds(&cpin.read())?;
            b.ok_or_else(|| DmxError::Corrupt("empty rtree child".into()))?
        };
        let mut page = pin.write();
        SlottedPage::update(
            &mut page,
            slot,
            &make_entry(&child_bounds, &child.to_le_bytes()),
        )?;
        self.stamp(&mut page);
        let Some(new_child) = split else {
            return Ok(None);
        };
        let new_bounds = {
            let cpin = self.page(new_child)?;
            let b = bounds(&cpin.read())?;
            b.ok_or_else(|| DmxError::Corrupt("empty rtree split".into()))?
        };
        let new_entry = make_entry(&new_bounds, &new_child.to_le_bytes());
        if SlottedPage::insert(&mut page, &new_entry).is_some() {
            self.stamp(&mut page);
            return Ok(None);
        }
        // split this inner node
        let mut items = entries(&page);
        items.push(new_entry);
        let (a, b) = quadratic_split(items)?;
        write_entries(&mut page, PAGE_TYPE_RTREE_INNER, &a)?;
        self.stamp(&mut page);
        drop(page);
        let new_pin = self.pool.new_page(self.root.file)?;
        let mut new_page = new_pin.write();
        write_entries(&mut new_page, PAGE_TYPE_RTREE_INNER, &b)?;
        self.stamp(&mut new_page);
        Ok(Some(new_pin.id().page_no))
    }

    /// After a root split: move the root's content into a fresh sibling
    /// and make the root an inner node over both.
    fn grow_root(&self, new_page: u32) -> Result<()> {
        let root_pin = self.page(self.root.page_no)?;
        let left_pin = self.pool.new_page(self.root.file)?;
        {
            let mut left = left_pin.write();
            let root = root_pin.read();
            *left.raw_mut() = *root.raw();
            self.stamp(&mut left);
        }
        let left_bounds =
            bounds(&left_pin.read())?.ok_or_else(|| DmxError::Corrupt("empty root copy".into()))?;
        let right_bounds = {
            let p = self.page(new_page)?;
            let b = bounds(&p.read())?;
            b.ok_or_else(|| DmxError::Corrupt("empty new sibling".into()))?
        };
        let mut root = root_pin.write();
        write_entries(
            &mut root,
            PAGE_TYPE_RTREE_INNER,
            &[
                make_entry(&left_bounds, &left_pin.id().page_no.to_le_bytes()),
                make_entry(&right_bounds, &new_page.to_le_bytes()),
            ],
        )?;
        self.stamp(&mut root);
        Ok(())
    }

    /// True when an entry with exactly `(rect, payload)` exists.
    pub fn contains(&self, rect: &Rect, payload: &[u8]) -> Result<bool> {
        let _g = self.latch.read();
        self.contains_rec(self.root.page_no, rect, payload)
    }

    fn contains_rec(&self, page_no: u32, rect: &Rect, payload: &[u8]) -> Result<bool> {
        let pin = self.page(page_no)?;
        let page = pin.read();
        if is_leaf(&page) {
            for (_, d) in live_entries(&page) {
                if entry_rect(d)? == *rect && entry_payload(d) == payload {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        let children: Vec<u32> = live_entries(&page)
            .filter_map(|(_, d)| match entry_rect(d) {
                Ok(r) if r.encloses(rect) => Some(child_of(d)),
                _ => None,
            })
            .collect();
        drop(page);
        drop(pin);
        for c in children {
            if self.contains_rec(c, rect, payload)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Removes the entry with exactly `(rect, payload)`. Returns whether
    /// it was found.
    pub fn delete(&self, rect: &Rect, payload: &[u8]) -> Result<bool> {
        let _g = self.latch.write();
        self.delete_rec(self.root.page_no, rect, payload)
    }

    fn delete_rec(&self, page_no: u32, rect: &Rect, payload: &[u8]) -> Result<bool> {
        let pin = self.page(page_no)?;
        if is_leaf(&pin.read()) {
            let target = {
                let page = pin.read();
                let found = live_entries(&page)
                    .find(|&(_, d)| {
                        entry_rect(d).map(|r| r == *rect).unwrap_or(false)
                            && entry_payload(d) == payload
                    })
                    .map(|(s, _)| s);
                found
            };
            if let Some(s) = target {
                let mut page = pin.write();
                SlottedPage::delete(&mut page, s);
                self.stamp(&mut page);
                return Ok(true);
            }
            return Ok(false);
        }
        let children: Vec<u32> = {
            let page = pin.read();
            live_entries(&page)
                .filter_map(|(_, d)| match entry_rect(d) {
                    Ok(r) if r.encloses(rect) => Some(child_of(d)),
                    _ => None,
                })
                .collect()
        };
        drop(pin);
        for c in children {
            if self.delete_rec(c, rect, payload)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Collects every `(rect, payload)` satisfying the spatial predicate.
    pub fn search(&self, op: SpatialOp, q: &Rect) -> Result<Vec<(Rect, Vec<u8>)>> {
        let _g = self.latch.read();
        let mut out = Vec::new();
        self.search_rec(self.root.page_no, op, q, &mut out)?;
        Ok(out)
    }

    /// Collects every entry (full scan).
    pub fn all(&self) -> Result<Vec<(Rect, Vec<u8>)>> {
        self.search(
            SpatialOp::Intersects,
            &Rect::new(f64::MIN, f64::MIN, f64::MAX, f64::MAX),
        )
    }

    fn search_rec(
        &self,
        page_no: u32,
        op: SpatialOp,
        q: &Rect,
        out: &mut Vec<(Rect, Vec<u8>)>,
    ) -> Result<()> {
        let pin = self.page(page_no)?;
        let page = pin.read();
        let leaf = is_leaf(&page);
        let mut descend = Vec::new();
        for (_, d) in live_entries(&page) {
            let r = entry_rect(d)?;
            if leaf {
                let hit = match op {
                    SpatialOp::Encloses => r.encloses(q),
                    SpatialOp::EnclosedBy => q.encloses(&r),
                    SpatialOp::Intersects => r.intersects(q),
                };
                if hit {
                    out.push((r, entry_payload(d).to_vec()));
                }
            } else {
                // pruning: a subtree can contain an enclosing record only
                // if its bounding rect itself encloses q; the other ops
                // only need overlap
                let visit = match op {
                    SpatialOp::Encloses => r.encloses(q),
                    SpatialOp::EnclosedBy | SpatialOp::Intersects => r.intersects(q),
                };
                if visit {
                    descend.push(child_of(d));
                }
            }
        }
        drop(page);
        drop(pin);
        for c in descend {
            self.search_rec(c, op, q, out)?;
        }
        Ok(())
    }

    /// Number of entries (diagnostics).
    pub fn len(&self) -> Result<usize> {
        Ok(self.all()?.len())
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

// ---------------------------------------------------------------------
// the attachment
// ---------------------------------------------------------------------

impl RTreeIndex {
    fn tree(services: &Arc<CommonServices>, d: &RtDesc) -> RTree {
        RTree::open(
            &services.pool,
            PageId::new(d.file, d.root_page),
            &services.latches,
        )
    }

    fn rect_of(d: &RtDesc, record: &Record) -> Result<Option<Rect>> {
        match record.values.get(d.rect_field as usize) {
            Some(Value::Rect(r)) => Ok(Some(*r)),
            Some(Value::Null) => Ok(None), // NULL rectangles are not indexed
            Some(other) => Err(DmxError::TypeMismatch(format!(
                "rtree field holds {other}, expected RECT"
            ))),
            None => Err(DmxError::InvalidArg("rtree field out of range".into())),
        }
    }

    fn type_id(rd: &RelationDescriptor, inst: &AttachmentInstance) -> dmx_types::AttTypeId {
        rd.attached_types()
            .find(|(_, insts)| {
                insts
                    .iter()
                    .any(|i| i.instance == inst.instance && i.name == inst.name)
            })
            .map(|(t, _)| t)
            .unwrap_or_default()
    }

    fn payload(rect: &Rect, rkey: &RecordKey) -> Vec<u8> {
        make_entry(rect, rkey.as_bytes())
    }
}

impl Attachment for RTreeIndex {
    fn name(&self) -> &str {
        "rtree"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        params.check_allowed(&["field"], "rtree index")?;
        let f = schema.field_id(params.require("field", "rtree index")?)?;
        if schema.column(f)?.data_type != dmx_types::DataType::Rect {
            return Err(DmxError::InvalidArg("rtree field must be RECT".into()));
        }
        Ok(())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let rect_field = rd
            .schema
            .field_id(params.require("field", "rtree index")?)?;
        let services = ctx.services();
        let file = services.disk.create_file()?;
        let tree = RTree::create(&services.pool, file, &services.latches)?;
        Ok(RtDesc {
            file,
            root_page: tree.root().page_no,
            rect_field,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()> {
        let d = RtDesc::decode(inst_desc)?;
        services.latches.forget(PageId::new(d.file, d.root_page));
        services.pool.discard_file(d.file);
        services.disk.delete_file(d.file)
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = RtDesc::decode(&inst.desc)?;
            let Some(rect) = Self::rect_of(&d, new)? else {
                continue;
            };
            // Log first, then apply with the LSN stamped onto dirtied
            // pages so the entry cannot reach disk before its log record.
            let lsn = log_att(
                ctx,
                rd,
                Self::type_id(rd, inst),
                A_INSERT,
                encode_att_payload(&inst.desc, &Self::payload(&rect, key), &[]),
            );
            Self::tree(ctx.services(), &d)
                .with_wal_lsn(lsn)
                .insert(&rect, key.as_bytes())?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        old_key: &RecordKey,
        new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = RtDesc::decode(&inst.desc)?;
            let old_rect = Self::rect_of(&d, old)?;
            let new_rect = Self::rect_of(&d, new)?;
            if old_rect == new_rect && old_key == new_key {
                continue;
            }
            if let Some(r) = old_rect {
                let tree = Self::tree(ctx.services(), &d);
                if tree.contains(&r, old_key.as_bytes())? {
                    let lsn = log_att(
                        ctx,
                        rd,
                        Self::type_id(rd, inst),
                        A_DELETE,
                        encode_att_payload(&inst.desc, &Self::payload(&r, old_key), &[]),
                    );
                    tree.with_wal_lsn(lsn).delete(&r, old_key.as_bytes())?;
                }
            }
            if let Some(r) = new_rect {
                let lsn = log_att(
                    ctx,
                    rd,
                    Self::type_id(rd, inst),
                    A_INSERT,
                    encode_att_payload(&inst.desc, &Self::payload(&r, new_key), &[]),
                );
                Self::tree(ctx.services(), &d)
                    .with_wal_lsn(lsn)
                    .insert(&r, new_key.as_bytes())?;
            }
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = RtDesc::decode(&inst.desc)?;
            let Some(rect) = Self::rect_of(&d, old)? else {
                continue;
            };
            let tree = Self::tree(ctx.services(), &d);
            if tree.contains(&rect, key.as_bytes())? {
                let lsn = log_att(
                    ctx,
                    rd,
                    Self::type_id(rd, inst),
                    A_DELETE,
                    encode_att_payload(&inst.desc, &Self::payload(&rect, key), &[]),
                );
                tree.with_wal_lsn(lsn).delete(&rect, key.as_bytes())?;
            }
        }
        Ok(())
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, entry, _) = decode_att_payload(payload)?;
        let d = RtDesc::decode(desc)?;
        let rect = entry_rect(entry)?;
        let rkey = entry_payload(entry);
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        match op {
            A_INSERT => {
                tree.delete(&rect, rkey)?;
            }
            A_DELETE => {
                // idempotent: at restart the delete may never have reached
                // disk, leaving the entry in place
                if !tree.contains(&rect, rkey)? {
                    tree.insert(&rect, rkey)?;
                }
            }
            other => return Err(DmxError::Corrupt(format!("bad rtree op {other}"))),
        }
        Ok(())
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, entry, _) = decode_att_payload(payload)?;
        let d = RtDesc::decode(desc)?;
        let rect = entry_rect(entry)?;
        let rkey = entry_payload(entry);
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        // Forward mirror of undo: presence-checked, so replaying against
        // the checkpoint image is idempotent.
        match op {
            A_INSERT => {
                if !tree.contains(&rect, rkey)? {
                    tree.insert(&rect, rkey)?;
                }
            }
            A_DELETE => {
                tree.delete(&rect, rkey)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad rtree op {other}"))),
        }
        Ok(())
    }

    fn supports_access(&self) -> bool {
        true
    }

    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        query: &AccessQuery,
    ) -> Result<Box<dyn ScanOps>> {
        let d = RtDesc::decode(&instance.desc)?;
        let tree = Self::tree(ctx.services(), &d);
        let results = match query {
            AccessQuery::Spatial(op, rect) => tree.search(*op, rect)?,
            AccessQuery::All => tree.all()?,
            _ => {
                return Err(DmxError::Unsupported(
                    "rtree serves spatial queries only".into(),
                ))
            }
        };
        Ok(Box::new(RtScan { results, pos: 0 }))
    }

    fn estimate(
        &self,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        preds: &[Expr],
    ) -> Option<PathChoice> {
        let d = RtDesc::decode(&instance.desc).ok()?;
        // recognize the spatial predicates on our field
        let (op, rect, applied) = preds.iter().find_map(|p| {
            let s = analyze::sargable(p)?;
            if s.field != d.rect_field {
                return None;
            }
            let (op, v) = match &s.op {
                SargOp::Encloses(v) => (SpatialOp::Encloses, v),
                SargOp::EnclosedBy(v) => (SpatialOp::EnclosedBy, v),
                SargOp::Intersects(v) => (SpatialOp::Intersects, v),
                _ => return None,
            };
            let rect = v.as_rect().ok()?;
            Some((op, rect, p.clone()))
        })?;
        let records = rd.stats.records();
        // spatial predicates are typically highly selective (~1%)
        let rows = (records as f64 * 0.01).max(1.0);
        let height = (records.max(2) as f64).log2() / 6.0 + 1.0;
        Some(PathChoice {
            path: AccessPath::Attachment(Self::type_id(rd, instance), instance.instance),
            query: AccessQuery::Spatial(op, rect),
            cost: Cost::new(height + rows / 50.0, rows),
            rows_out: rows,
            covered: Some(vec![d.rect_field]),
            applied: vec![applied],
            ordering: None,
        })
    }
}

/// Spatial scans materialize their result keys at open (R-tree positions
/// are not byte-ordered); the saved position is the cursor offset.
struct RtScan {
    results: Vec<(Rect, Vec<u8>)>,
    pos: usize,
}

impl ScanOps for RtScan {
    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let Some((rect, rkey)) = self.results.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        Ok(Some(ScanItem {
            key: RecordKey::new(rkey.clone()),
            values: Some(vec![Value::Rect(*rect)]),
        }))
    }

    fn save_position(&self) -> Vec<u8> {
        (self.pos as u64).to_le_bytes().to_vec()
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        let arr: [u8; 8] = pos
            .try_into()
            .map_err(|_| DmxError::Corrupt("bad rtree scan position".into()))?;
        self.pos = u64::from_le_bytes(arr) as usize;
        Ok(())
    }
}
