//! Shared helpers for attachment implementations.

use dmx_core::{ExecCtx, RelationDescriptor};
use dmx_types::{AttrList, DmxError, FieldId, Lsn, Record, Result, Schema, Value};
use dmx_wal::ExtKind;

/// Attachment op code: an entry was added to an attachment's structure.
pub const A_INSERT: u8 = 1;
/// Attachment op code: an entry was removed.
pub const A_DELETE: u8 = 2;
/// Attachment op code: a numeric delta was applied (maintained
/// aggregates).
pub const A_DELTA: u8 = 3;

/// Encodes an attachment undo payload. The *instance descriptor* is
/// embedded so undo never needs a catalog lookup (the instance may even
/// have been dropped by the time restart runs).
pub fn encode_att_payload(desc: &[u8], key: &[u8], extra: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + desc.len() + key.len() + extra.len());
    v.extend_from_slice(&(desc.len() as u16).to_le_bytes());
    v.extend_from_slice(desc);
    v.extend_from_slice(&(key.len() as u16).to_le_bytes());
    v.extend_from_slice(key);
    v.extend_from_slice(extra);
    v
}

/// Reads a little-endian `u16` at `off`, or a `Corrupt("short {what}")`
/// error when the buffer is too small.
pub fn read_u16(b: &[u8], off: usize, what: &str) -> Result<u16> {
    b.get(off..off + 2)
        .and_then(|s| s.try_into().ok())
        .map(u16::from_le_bytes)
        .ok_or_else(|| DmxError::Corrupt(format!("short {what}")))
}

/// Reads a little-endian `u32` at `off`; see [`read_u16`].
pub fn read_u32(b: &[u8], off: usize, what: &str) -> Result<u32> {
    b.get(off..off + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| DmxError::Corrupt(format!("short {what}")))
}

/// Reads a little-endian `u64` at `off`; see [`read_u16`].
pub fn read_u64(b: &[u8], off: usize, what: &str) -> Result<u64> {
    b.get(off..off + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| DmxError::Corrupt(format!("short {what}")))
}

/// `b[off..]`, or a `Corrupt("short {what}")` error when `off` is past
/// the end of the buffer.
pub fn tail<'a>(b: &'a [u8], off: usize, what: &str) -> Result<&'a [u8]> {
    b.get(off..)
        .ok_or_else(|| DmxError::Corrupt(format!("short {what}")))
}

/// Decodes `(desc, key, extra)` from [`encode_att_payload`].
pub fn decode_att_payload(p: &[u8]) -> Result<(&[u8], &[u8], &[u8])> {
    let corrupt = || DmxError::Corrupt("short attachment payload".into());
    let dlen = read_u16(p, 0, "attachment payload")? as usize;
    let desc = p.get(2..2 + dlen).ok_or_else(corrupt)?;
    let rest = tail(p, 2 + dlen, "attachment payload")?;
    let klen = read_u16(rest, 0, "attachment payload")? as usize;
    let key = rest.get(2..2 + klen).ok_or_else(corrupt)?;
    let extra = tail(rest, 2 + klen, "attachment payload")?;
    Ok((desc, key, extra))
}

/// Logs an attachment operation on the transaction's undo chain.
pub fn log_att(
    ctx: &ExecCtx<'_>,
    rd: &RelationDescriptor,
    att: dmx_types::AttTypeId,
    op: u8,
    payload: Vec<u8>,
) -> Lsn {
    ctx.log_ext_op(ExtKind::Attachment(att), rd.id, op, payload)
}

/// Parses a comma-separated field-name list attribute into field ids.
pub fn parse_fields(
    params: &AttrList,
    attr: &str,
    who: &str,
    schema: &Schema,
) -> Result<Vec<FieldId>> {
    let spec = params.require(attr, who)?;
    let mut fields = Vec::new();
    for name in spec.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        let id = schema.field_id(name)?;
        if fields.contains(&id) {
            return Err(DmxError::InvalidArg(format!("duplicate field {name}")));
        }
        fields.push(id);
    }
    if fields.is_empty() {
        return Err(DmxError::InvalidArg(format!("{who}: empty field list")));
    }
    Ok(fields)
}

/// Extracts the values of `fields` from a record.
pub fn field_values(record: &Record, fields: &[FieldId]) -> Result<Vec<Value>> {
    fields
        .iter()
        .map(|&f| {
            record
                .values
                .get(f as usize)
                .cloned()
                .ok_or_else(|| DmxError::InvalidArg(format!("no field {f}")))
        })
        .collect()
}

/// Smallest byte string greater than every string with prefix `b`
/// (`None` when `b` is all-0xFF, i.e. unbounded above).
pub fn prefix_successor(b: &[u8]) -> Option<Vec<u8>> {
    let mut v = b.to_vec();
    while let Some(last) = v.pop() {
        if last != 0xFF {
            v.push(last + 1);
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn att_payload_roundtrip() {
        let p = encode_att_payload(b"desc", b"key", b"extra");
        let (d, k, e) = decode_att_payload(&p).unwrap();
        assert_eq!((d, k, e), (&b"desc"[..], &b"key"[..], &b"extra"[..]));
        let p2 = encode_att_payload(b"", b"", b"");
        let (d, k, e) = decode_att_payload(&p2).unwrap();
        assert!(d.is_empty() && k.is_empty() && e.is_empty());
        assert!(decode_att_payload(&[1]).is_err());
    }

    #[test]
    fn successor_orders_correctly() {
        assert_eq!(prefix_successor(b"ab").unwrap(), b"ac");
        assert_eq!(prefix_successor(&[1, 0xFF]).unwrap(), vec![2]);
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        // every string with the prefix sorts below the successor
        let p = vec![3u8, 0xFF, 7];
        let succ = prefix_successor(&p).unwrap();
        let mut extended = p.clone();
        extended.extend_from_slice(&[0xFF; 8]);
        assert!(extended < succ);
        assert!(p < succ);
    }
}
