//! Scan-position serialization shared by attachment scans.

use dmx_types::{DmxError, Result};

/// `[0]` = at start; `[1] ∥ key` = positioned after `key`.
pub fn encode(after: Option<&[u8]>) -> Vec<u8> {
    match after {
        None => vec![0],
        Some(k) => {
            let mut v = Vec::with_capacity(1 + k.len());
            v.push(1);
            v.extend_from_slice(k);
            v
        }
    }
}

/// Parses [`encode`] output.
pub fn decode(pos: &[u8]) -> Result<Option<Vec<u8>>> {
    match pos.split_first() {
        Some((0, _)) => Ok(None),
        Some((1, rest)) => Ok(Some(rest.to_vec())),
        _ => Err(DmxError::Corrupt("bad scan position".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(decode(&encode(None)).unwrap(), None);
        assert_eq!(decode(&encode(Some(b"k"))).unwrap(), Some(b"k".to_vec()));
        assert!(decode(&[]).is_err());
    }
}
