//! The B-tree index access path.
//!
//! The paper's worked example: after an insert, "the B-tree insert
//! procedure will form an index key by projecting fields from the
//! inserted record, and then insert the index key plus tuple identifier
//! or record key into the B-tree index. … Of course, the B-tree update
//! operation should be able to detect when no indexed fields for a given
//! index are modified."
//!
//! Index entries are `enc(field values) ∥ record_key → record_key`; the
//! appended record key makes duplicate index keys unique. Unique indexes
//! veto inserts whose index-key prefix already exists.

use std::ops::Bound;
use std::sync::Arc;

use dmx_btree::{BTree, OnDuplicate};
use dmx_core::{
    AccessPath, AccessQuery, Attachment, AttachmentInstance, CommonServices, Cost, ExecCtx,
    KeyRange, PathChoice, RelationDescriptor, ScanItem, ScanOps,
};
use dmx_expr::{analyze, Expr, SargOp};
use dmx_lock::{LockMode, LockName};
use dmx_types::{
    key::{decode_values, encode_values},
    AttrList, DmxError, FieldId, FileId, Lsn, PageId, Record, RecordKey, RelationId, Result,
    Schema, Value,
};

use crate::common::{
    decode_att_payload, encode_att_payload, field_values, log_att, parse_fields, prefix_successor,
    read_u16, read_u32, A_DELETE, A_INSERT,
};

/// The B-tree index attachment type.
pub struct BTreeIndex;

/// Instance descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct IxDesc {
    pub file: FileId,
    pub root_page: u32,
    pub unique: bool,
    pub fields: Vec<FieldId>,
}

impl IxDesc {
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(11 + self.fields.len() * 2);
        v.extend_from_slice(&self.file.0.to_le_bytes());
        v.extend_from_slice(&self.root_page.to_le_bytes());
        v.push(self.unique as u8);
        v.extend_from_slice(&(self.fields.len() as u16).to_le_bytes());
        for f in &self.fields {
            v.extend_from_slice(&f.to_le_bytes());
        }
        v
    }

    pub fn decode(b: &[u8]) -> Result<IxDesc> {
        const WHAT: &str = "index descriptor";
        let corrupt = || DmxError::Corrupt(format!("short {WHAT}"));
        let file = FileId(read_u32(b, 0, WHAT)?);
        let root_page = read_u32(b, 4, WHAT)?;
        let unique = *b.get(8).ok_or_else(corrupt)? != 0;
        let n = read_u16(b, 9, WHAT)? as usize;
        let mut fields = Vec::with_capacity(n);
        for i in 0..n {
            fields.push(read_u16(b, 11 + 2 * i, WHAT)?);
        }
        Ok(IxDesc {
            file,
            root_page,
            unique,
            fields,
        })
    }
}

impl BTreeIndex {
    fn tree(services: &Arc<CommonServices>, d: &IxDesc) -> BTree {
        BTree::open(
            &services.pool,
            PageId::new(d.file, d.root_page),
            &services.latches,
        )
    }

    fn prefix(d: &IxDesc, record: &Record) -> Result<Vec<u8>> {
        Ok(encode_values(&field_values(record, &d.fields)?))
    }

    fn full_key(prefix: &[u8], rkey: &RecordKey) -> Vec<u8> {
        let mut v = Vec::with_capacity(prefix.len() + rkey.len());
        v.extend_from_slice(prefix);
        v.extend_from_slice(rkey.as_bytes());
        v
    }

    fn insert_entry(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        key: &RecordKey,
        record: &Record,
    ) -> Result<()> {
        let d = IxDesc::decode(&inst.desc)?;
        let prefix = Self::prefix(&d, record)?;
        let tree = Self::tree(ctx.services(), &d);
        if d.unique && tree.contains_prefix(&prefix)? {
            return Err(DmxError::veto(
                self.name(),
                format!("unique index '{}' violated", inst.name),
            ));
        }
        let full = Self::full_key(&prefix, key);
        // Fence the entry against locked index-range scans: X the gap
        // the new entry splits (named by its in-tree successor).
        let succ = tree.seek(Bound::Excluded(full.as_slice()))?.map(|(k, _)| k);
        ctx.lock(LockName::gap(rd.id, d.file, succ.as_deref()), LockMode::X)?;
        // Log first, then apply with the record's LSN stamped onto every
        // page the tree op dirties: the flush hook forces the log through
        // a page's LSN before writing it, so the entry can never reach
        // disk ahead of the record that lets recovery undo it. (The undo
        // handler tolerates the converse — logged but never applied.)
        let lsn = log_att(
            ctx,
            rd,
            find_type_id(rd, inst),
            A_INSERT,
            encode_att_payload(&inst.desc, &full, key.as_bytes()),
        );
        tree.with_wal_lsn(lsn)
            .insert(&full, key.as_bytes(), OnDuplicate::Error)?;
        Ok(())
    }

    fn delete_entry(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        inst: &AttachmentInstance,
        key: &RecordKey,
        record: &Record,
    ) -> Result<()> {
        let d = IxDesc::decode(&inst.desc)?;
        let prefix = Self::prefix(&d, record)?;
        let full = Self::full_key(&prefix, key);
        let tree = Self::tree(ctx.services(), &d);
        if tree.get(&full)?.is_none() {
            return Ok(());
        }
        // Deleting merges the entry's gap into its successor's: X both
        // names so locked index-range scans spanning either conflict.
        ctx.lock(
            LockName::gap(rd.id, d.file, Some(full.as_slice())),
            LockMode::X,
        )?;
        let succ = tree.seek(Bound::Excluded(full.as_slice()))?.map(|(k, _)| k);
        ctx.lock(LockName::gap(rd.id, d.file, succ.as_deref()), LockMode::X)?;
        // Write-ahead: log, then delete with the LSN stamped (see insert).
        let lsn = log_att(
            ctx,
            rd,
            find_type_id(rd, inst),
            A_DELETE,
            encode_att_payload(&inst.desc, &full, key.as_bytes()),
        );
        tree.with_wal_lsn(lsn).delete(&full)?;
        Ok(())
    }
}

impl Attachment for BTreeIndex {
    fn name(&self) -> &str {
        "btree"
    }

    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()> {
        params.check_allowed(&["fields", "unique"], "btree index")?;
        params.get_bool("unique", false)?;
        parse_fields(params, "fields", "btree index", schema).map(|_| ())
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let fields = parse_fields(params, "fields", "btree index", &rd.schema)?;
        let unique = params.get_bool("unique", false)?;
        let services = ctx.services();
        let file = services.disk.create_file()?;
        let tree = BTree::create(&services.pool, file, &services.latches)?;
        Ok(IxDesc {
            file,
            root_page: tree.root().page_no,
            unique,
            fields,
        }
        .encode())
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()> {
        let d = IxDesc::decode(inst_desc)?;
        services.latches.forget(PageId::new(d.file, d.root_page));
        services.pool.discard_file(d.file);
        services.disk.delete_file(d.file)
    }

    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.insert_entry(ctx, rd, inst, key, new)?;
        }
        Ok(())
    }

    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        old_key: &RecordKey,
        new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()> {
        for inst in instances {
            let d = IxDesc::decode(&inst.desc)?;
            let old_prefix = Self::prefix(&d, old)?;
            let new_prefix = Self::prefix(&d, new)?;
            if old_prefix == new_prefix && old_key == new_key {
                continue; // no indexed field modified
            }
            self.delete_entry(ctx, rd, inst, old_key, old)?;
            self.insert_entry(ctx, rd, inst, new_key, new)?;
        }
        Ok(())
    }

    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        old: &Record,
    ) -> Result<()> {
        for inst in instances {
            self.delete_entry(ctx, rd, inst, key, old)?;
        }
        Ok(())
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, key, extra) = decode_att_payload(payload)?;
        let d = IxDesc::decode(desc)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        match op {
            A_INSERT => {
                tree.delete(key)?;
            }
            A_DELETE => {
                tree.insert(key, extra, OnDuplicate::Replace)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad index op {other}"))),
        }
        Ok(())
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        _rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let (desc, key, extra) = decode_att_payload(payload)?;
        let d = IxDesc::decode(desc)?;
        let tree = Self::tree(services, &d).with_wal_lsn(lsn);
        // Forward mirror of undo: replace/absent-tolerant, so replaying
        // an entry already present in the checkpoint image is a no-op.
        match op {
            A_INSERT => {
                tree.insert(key, extra, OnDuplicate::Replace)?;
            }
            A_DELETE => {
                tree.delete(key)?;
            }
            other => return Err(DmxError::Corrupt(format!("bad index op {other}"))),
        }
        Ok(())
    }

    fn supports_access(&self) -> bool {
        true
    }

    fn storage_files(&self, inst_desc: &[u8]) -> Vec<FileId> {
        IxDesc::decode(inst_desc)
            .map(|d| vec![d.file])
            .unwrap_or_default()
    }

    fn reconstruct_params(&self, rd: &RelationDescriptor, inst_desc: &[u8]) -> Result<AttrList> {
        let d = IxDesc::decode(inst_desc)?;
        let names: Vec<&str> = d
            .fields
            .iter()
            .map(|&f| rd.schema.column(f).map(|c| c.name.as_str()))
            .collect::<Result<_>>()?;
        AttrList::from_pairs([
            ("fields".to_string(), names.join(",")),
            ("unique".to_string(), d.unique.to_string()),
        ])
    }

    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        query: &AccessQuery,
    ) -> Result<Box<dyn ScanOps>> {
        let d = IxDesc::decode(&instance.desc)?;
        let tree = Self::tree(ctx.services(), &d);
        let (lo, hi) = translate_prefix_range(query)?;
        Ok(Box::new(IndexScan {
            tree,
            rel: rd.id,
            file: d.file,
            lo,
            hi,
            fields: d.fields,
            after: None,
            range_lock: false,
            end_gap_locked: false,
        }))
    }

    fn estimate(
        &self,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        preds: &[Expr],
    ) -> Option<PathChoice> {
        let d = IxDesc::decode(&instance.desc).ok()?;
        let sargs: Vec<_> = preds.iter().filter_map(analyze::sargable).collect();
        // Match Eq sargs on the leading fields, then optionally one range
        // sarg on the next field.
        let mut eq_values = Vec::new();
        let mut applied = Vec::new();
        for &f in &d.fields {
            if let Some((i, s)) = sargs
                .iter()
                .enumerate()
                .find(|(_, s)| s.field == f && matches!(s.op, SargOp::Eq(_)))
            {
                if let SargOp::Eq(v) = &s.op {
                    eq_values.push(v.clone());
                    applied.push(preds[pred_index(preds, i, &sargs)].clone());
                    continue;
                }
            }
            break;
        }
        let range_sarg = if eq_values.len() < d.fields.len() {
            let next = d.fields[eq_values.len()];
            sargs
                .iter()
                .enumerate()
                .find(|(_, s)| s.field == next && matches!(s.op, SargOp::Range(_, _)))
        } else {
            None
        };
        if eq_values.is_empty() && range_sarg.is_none() {
            return None; // no relevant predicate → not an eligible path
        }
        let prefix = encode_values(&eq_values);
        // Maintained statistics sharpen the matched fraction when they
        // cover the constrained fields; structural guesses otherwise.
        let ts = rd.stats.table_stats();
        let eq_stat_frac: Option<f64> = d
            .fields
            .iter()
            .take(eq_values.len())
            .zip(&eq_values)
            .map(|(&f, v)| dmx_expr::sarg_fraction(f, &SargOp::Eq(v.clone()), ts.as_deref()))
            .product();
        let (lo, hi, frac) = match range_sarg {
            Some((i, s)) => {
                if let SargOp::Range(op, v) = &s.op {
                    applied.push(preds[pred_index(preds, i, &sargs)].clone());
                    let mut lo_b = prefix.clone();
                    let mut hi_b = prefix.clone();
                    lo_b.extend_from_slice(&encode_values(std::slice::from_ref(v)));
                    hi_b.extend_from_slice(&encode_values(std::slice::from_ref(v)));
                    use dmx_expr::CmpOp::*;
                    let (lo, hi) = match op {
                        Lt => (Bound::Included(prefix.clone()), Bound::Excluded(hi_b)),
                        Le => (Bound::Included(prefix.clone()), Bound::Included(hi_b)),
                        Gt => (Bound::Excluded(lo_b), prefix_hi(&prefix)),
                        Ge => (Bound::Included(lo_b), prefix_hi(&prefix)),
                        _ => (Bound::Included(prefix.clone()), prefix_hi(&prefix)),
                    };
                    let range_frac =
                        dmx_expr::sarg_fraction(d.fields[eq_values.len()], &s.op, ts.as_deref())
                            .unwrap_or(1.0 / 3.0);
                    (lo, hi, eq_stat_frac.unwrap_or(1.0) * range_frac)
                } else {
                    unreachable!()
                }
            }
            None => (
                Bound::Included(prefix.clone()),
                prefix_hi(&prefix),
                eq_stat_frac.unwrap_or_else(|| {
                    (1.0 / rd.stats.records().max(1) as f64).max(if d.unique { 0.0 } else { 0.01 })
                }),
            ),
        };
        let records = rd.stats.records();
        let rows = (records as f64 * frac).max(if eq_values.is_empty() { 1.0 } else { 0.0 });
        let height = (records.max(2) as f64).log2() / 7.0 + 1.0;
        let leaf_pages = (rows / 100.0).ceil();
        Some(PathChoice {
            path: AccessPath::Attachment(find_type_id(rd, instance), instance.instance),
            query: AccessQuery::Range(KeyRange { lo, hi }),
            cost: Cost::new(height + leaf_pages, rows),
            rows_out: rows.max(0.001),
            covered: Some(d.fields.clone()),
            applied,
            ordering: Some(d.fields.clone()),
        })
    }
}

/// Maps a sarg index back to the predicate that produced it (sargs are
/// produced by filtering predicates, in order).
fn pred_index(preds: &[Expr], sarg_idx: usize, _sargs: &[analyze::Sarg]) -> usize {
    // sargable() is applied per-predicate in order; rebuild the mapping.
    let mut n = 0;
    for (i, p) in preds.iter().enumerate() {
        if analyze::sargable(p).is_some() {
            if n == sarg_idx {
                return i;
            }
            n += 1;
        }
    }
    0
}

fn find_type_id(rd: &RelationDescriptor, instance: &AttachmentInstance) -> dmx_types::AttTypeId {
    rd.attached_types()
        .find(|(_, insts)| {
            insts
                .iter()
                .any(|i| i.instance == instance.instance && i.name == instance.name)
        })
        .map(|(t, _)| t)
        .unwrap_or_default()
}

fn prefix_hi(prefix: &[u8]) -> Bound<Vec<u8>> {
    if prefix.is_empty() {
        return Bound::Unbounded;
    }
    match prefix_successor(prefix) {
        Some(s) => Bound::Excluded(s),
        None => Bound::Unbounded,
    }
}

/// A resolved `(low, high)` pair of full-key scan bounds.
type KeyBounds = (Bound<Vec<u8>>, Bound<Vec<u8>>);

/// Translates a planner range over index-key *prefixes* into a range over
/// full keys (`prefix ∥ record_key`).
fn translate_prefix_range(query: &AccessQuery) -> Result<KeyBounds> {
    let owned;
    let kr = match query {
        AccessQuery::All => return Ok((Bound::Unbounded, Bound::Unbounded)),
        AccessQuery::KeyEquals(k) => {
            owned = KeyRange::exact(k.clone());
            &owned
        }
        AccessQuery::Range(kr) => kr,
        AccessQuery::Spatial(_, _) => {
            return Err(DmxError::Unsupported("btree index: spatial query".into()))
        }
    };
    let lo = match &kr.lo {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(a) => Bound::Included(a.clone()),
        // exclude every full key with this exact prefix
        Bound::Excluded(a) => match prefix_successor(a) {
            Some(s) => Bound::Included(s),
            None => Bound::Excluded(a.clone()),
        },
    };
    let hi = match &kr.hi {
        Bound::Unbounded => Bound::Unbounded,
        // include every full key with this exact prefix
        Bound::Included(b) => match prefix_successor(b) {
            Some(s) => Bound::Excluded(s),
            None => Bound::Unbounded,
        },
        Bound::Excluded(b) => Bound::Excluded(b.clone()),
    };
    Ok((lo, hi))
}

/// Key-sequential access over an index: returns record keys plus the
/// covered (indexed) field values decoded from the index key.
struct IndexScan {
    tree: BTree,
    rel: RelationId,
    file: FileId,
    lo: Bound<Vec<u8>>,
    hi: Bound<Vec<u8>>,
    /// The indexed fields — prefix decode count for covered values, and
    /// the projection [`ScanOps::item_from_version`] re-derives from a
    /// record's current values.
    fields: Vec<FieldId>,
    after: Option<Vec<u8>>,
    /// S-lock the gap below every index entry the scan passes
    /// (locking-scan dispatch only; raw internal scans leave it off).
    range_lock: bool,
    end_gap_locked: bool,
}

impl ScanOps for IndexScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let bound = match &self.after {
            Some(k) => Bound::Excluded(k.as_slice()),
            None => match &self.lo {
                Bound::Included(b) => Bound::Included(b.as_slice()),
                Bound::Excluded(b) => Bound::Excluded(b.as_slice()),
                Bound::Unbounded => Bound::Unbounded,
            },
        };
        let Some((key, value)) = self.tree.seek(bound)? else {
            if self.range_lock && !self.end_gap_locked {
                self.end_gap_locked = true;
                ctx.lock(LockName::gap(self.rel, self.file, None), LockMode::S)?;
            }
            return Ok(None);
        };
        let in_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => key <= *h,
            Bound::Excluded(h) => key < *h,
        };
        if !in_hi {
            if self.range_lock && !self.end_gap_locked {
                self.end_gap_locked = true;
                // Record before gap (see the in-range arm): the boundary
                // entry's record may be mid-delete, and the deleter
                // already holds its record X while acquiring gaps.
                ctx.lock_record(self.rel, &RecordKey::new(value.clone()), LockMode::S)?;
                ctx.lock(LockName::gap(self.rel, self.file, Some(&key)), LockMode::S)?;
            }
            return Ok(None);
        }
        if self.range_lock {
            // Record S on the entry's record key ahead of the gap S:
            // writers lock record X before entry gaps (the DML layer
            // X-locks the record before attachment maintenance runs), so
            // a shared per-key order keeps a range scan and a concurrent
            // delete from deadlocking across the Record/Gap pair. The
            // LockingScan wrapper's later record S is a re-grant.
            ctx.lock_record(self.rel, &RecordKey::new(value.clone()), LockMode::S)?;
            ctx.lock(LockName::gap(self.rel, self.file, Some(&key)), LockMode::S)?;
        }
        self.after = Some(key.clone());
        // the index key prefix covers the indexed fields
        let covered = decode_values(&key, self.fields.len())?;
        Ok(Some(ScanItem {
            key: RecordKey::new(value),
            values: Some(covered),
        }))
    }

    fn supports_versioned_read(&self) -> bool {
        true
    }

    fn item_from_version(
        &self,
        _ctx: &ExecCtx<'_>,
        key: &RecordKey,
        values: &[Value],
    ) -> Result<Option<ScanItem>> {
        // Covered values re-derived from the record itself, not the
        // (possibly stale or uncommitted) index entry.
        let covered = self
            .fields
            .iter()
            .map(|&f| {
                values
                    .get(f as usize)
                    .cloned()
                    .ok_or_else(|| DmxError::InvalidArg(format!("no field {f}")))
            })
            .collect::<Result<Vec<_>>>()?;
        // The record's *current* indexed values decide range membership
        // (the entry that surfaced the item may describe older ones).
        let mut full = encode_values(&covered);
        full.extend_from_slice(key.as_bytes());
        let in_lo = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => full >= *b,
            Bound::Excluded(b) => full > *b,
        };
        let in_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => full <= *b,
            Bound::Excluded(b) => full < *b,
        };
        if !in_lo || !in_hi {
            return Ok(None);
        }
        Ok(Some(ScanItem {
            key: key.clone(),
            values: Some(covered),
        }))
    }

    fn set_range_locking(&mut self, on: bool) {
        self.range_lock = on;
    }

    fn save_position(&self) -> Vec<u8> {
        crate::common_position::encode(self.after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = crate::common_position::decode(pos)?;
        self.end_gap_locked = false;
        Ok(())
    }
}
