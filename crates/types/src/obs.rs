//! Std-only observability: named metrics and a lightweight event sink.
//!
//! The extension architecture funnels every storage method and attachment
//! through generic operation interfaces, which makes those call sites the
//! natural measurement points for the whole system. This module supplies
//! the two primitives the rest of the workspace instruments itself with:
//!
//! * a [`MetricsRegistry`] of named atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s, snapshotable in deterministic (sorted)
//!   order, and
//! * an [`ObsSink`] trace hook fired with [`ObsEvent`]s at operation
//!   boundaries, with a bounded [`RingSink`] as the default consumer.
//!
//! **Determinism rule:** nothing here reads a clock. Metrics count events
//! (I/Os, retries, evictions, lock waits, WAL forces, frames appended,
//! records scanned), never durations, so that two runs of a seeded
//! workload produce identical snapshots. Wall-clock timing belongs only
//! to the bench binary, which wraps whole scenarios in monotonic timers
//! outside the measured system. `cargo xtask verify` enforces this by
//! denying `Instant`/`SystemTime` in runtime crates.
//!
//! Hot paths never touch the registry maps: components resolve their
//! `Arc<Counter>` handles once at construction and then pay a single
//! relaxed atomic add per event. Event emission through the sink is
//! gated by one relaxed `AtomicBool` load, so an uninstalled sink costs
//! essentially nothing.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::{Mutex, RwLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A new counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level that moves both ways (e.g. the number of dirty frames).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A new gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn decr(&self) {
        self.add(-1);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of event *sizes* (rows per scan, frames per
/// force), never durations. `bounds` are inclusive upper edges; values
/// above the last bound land in an implicit overflow bucket.
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation of size `v`.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed sizes.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket upper bounds (sorted; the overflow bucket has no bound).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, one more entry than `bounds()` (overflow last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// One traced operation-boundary event. Kept `Copy` and allocation-free
/// so emission is cheap; `target`/`detail` carry op-specific identifiers
/// (a relation id, a page number, a row count) as plain integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Which subsystem fired the event ("pool", "wal", "lock", "dml", ...).
    pub layer: &'static str,
    /// The operation at whose boundary the event fired ("fetch", "force", ...).
    pub op: &'static str,
    /// Primary subject of the event (page number, relation id, txn id...).
    pub target: u64,
    /// Secondary payload (frame count, row count, veto code...).
    pub detail: u64,
}

/// Consumer of [`ObsEvent`]s. Implementations must be cheap and must not
/// call back into the database (events fire while internal locks are held).
pub trait ObsSink: Send + Sync {
    /// Receives one event.
    fn record(&self, event: ObsEvent);
}

/// Default [`ObsSink`]: a bounded ring that keeps the most recent events.
///
/// The ring numbers every event it has ever seen, so consumers can tell
/// when eviction dropped telemetry: the first sequence number of a drain
/// being greater than the last previously-seen sequence (or than zero)
/// means the ring truncated. [`RingSink::evicted`] exposes the total
/// number of dropped events directly.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<ObsEvent>>,
    /// Events ever recorded (monotonic; next event gets this sequence).
    total: AtomicU64,
    /// Events dropped from the front because the ring was full.
    evicted: AtomicU64,
}

impl RingSink {
    /// A ring keeping at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
            total: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        })
    }

    /// Drains and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<ObsEvent> {
        self.buf.lock().drain(..).collect()
    }

    /// Drains the buffered events paired with their global sequence
    /// numbers (0-based over the ring's whole lifetime), oldest first.
    /// A first sequence greater than the previous drain's end reveals
    /// that eviction dropped events in between.
    pub fn drain_numbered(&self) -> Vec<(u64, ObsEvent)> {
        let mut buf = self.buf.lock();
        let total = self.total.load(Ordering::Relaxed);
        let first = total - buf.len() as u64;
        buf.drain(..)
            .enumerate()
            .map(|(i, e)| (first + i as u64, e))
            .collect()
    }

    /// A non-draining copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.buf.lock().iter().copied().collect()
    }

    /// Total events dropped because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl ObsSink for RingSink {
    fn record(&self, event: ObsEvent) {
        let mut buf = self.buf.lock();
        if buf.len() == self.cap {
            buf.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
        self.total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Registry of named metrics plus the optional event sink.
///
/// Registration is idempotent: `counter(name)` returns the same handle
/// for the same name, so independent components may share a metric.
/// Maps are `BTreeMap`s so snapshots list metrics in a deterministic
/// (lexicographic) order regardless of registration order.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sink_installed: AtomicBool,
    sink: RwLock<Option<Arc<dyn ObsSink>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), g.clone());
        g
    }

    /// Returns (registering on first use) the histogram named `name` with
    /// the given inclusive bucket upper bounds. Bounds are fixed by the
    /// first registration; later callers receive the existing handle.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new(bounds));
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Installs (or replaces) the event sink.
    pub fn set_sink(&self, sink: Arc<dyn ObsSink>) {
        *self.sink.write() = Some(sink);
        self.sink_installed.store(true, Ordering::Release);
    }

    /// Removes the event sink.
    pub fn clear_sink(&self) {
        self.sink_installed.store(false, Ordering::Release);
        *self.sink.write() = None;
    }

    /// Emits one event to the sink, if installed. One relaxed atomic load
    /// when no sink is present.
    #[inline]
    pub fn emit(&self, event: ObsEvent) {
        if !self.sink_installed.load(Ordering::Relaxed) {
            return;
        }
        if let Some(sink) = self.sink.read().as_ref() {
            sink.record(event);
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: v.bounds().to_vec(),
                        buckets: v.bucket_counts(),
                        count: v.count(),
                        sum: v.sum(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Frozen histogram state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one more entry than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed sizes.
    pub sum: u64,
}

/// Point-in-time metric values, sorted by name. `PartialEq` so tests can
/// assert two seeded runs produced identical observability state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, lexicographic by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, lexicographic by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram, lexicographic by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, or 0 when unregistered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Level of the gauge named `name`, or 0 when unregistered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Number of distinct named metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True when no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the snapshot as a JSON object (hand-rolled: the workspace
    /// is std-only). Metric names are escaped as JSON strings, so a
    /// future dynamic name (e.g. per-relation, user-influenced) cannot
    /// produce invalid output.
    pub fn to_json(&self) -> String {
        fn clean(name: &str, out: &mut String) {
            out.push('"');
            for c in name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut s = String::new();
        s.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            clean(name, &mut s);
            let _ = write!(s, ":{v}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            clean(name, &mut s);
            let _ = write!(s, ":{v}");
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            clean(name, &mut s);
            let _ = write!(s, ":{{\"count\":{},\"sum\":{},\"bounds\":[", h.count, h.sum);
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("],\"buckets\":[");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }
}

/// The workspace metric-name catalog. Components register under these
/// names so snapshots are comparable across runs and documented in one
/// place (DESIGN.md §10 mirrors this list).
pub mod name {
    /// Buffer-pool page fetches served from a resident frame.
    pub const POOL_HITS: &str = "pool.hits";
    /// Buffer-pool page fetches that had to read from disk.
    pub const POOL_MISSES: &str = "pool.misses";
    /// Frames evicted to make room.
    pub const POOL_EVICTIONS: &str = "pool.evictions";
    /// Dirty frames written back to disk.
    pub const POOL_FLUSHES: &str = "pool.flushes";
    /// Page pin attempts that found the frame latch contended.
    pub const POOL_PIN_WAITS: &str = "pool.pin_waits";
    /// Current number of dirty frames (gauge, maintained incrementally).
    pub const POOL_DIRTY: &str = "pool.dirty";
    /// Dirty frames written back by steal eviction (uncommitted data flushed
    /// after forcing the WAL up to the page's LSN).
    pub const POOL_STEALS: &str = "pool.steals";

    /// Log records appended to the volatile tail.
    pub const WAL_APPENDS: &str = "wal.appends";
    /// Force (flush-to-stable) calls that had work to do.
    pub const WAL_FORCES: &str = "wal.forces";
    /// Frames moved from the volatile tail to stable storage.
    pub const WAL_FRAMES_FORCED: &str = "wal.frames_forced";
    /// Histogram: frames moved per force call.
    pub const WAL_FORCE_BATCH: &str = "wal.force_batch";

    /// Lock requests granted (immediately or after waiting).
    pub const LOCK_ACQUIRES: &str = "lock.acquires";
    /// Lock requests that had to enqueue behind a conflict.
    pub const LOCK_WAITS: &str = "lock.waits";
    /// Deadlocks detected (victim aborted).
    pub const LOCK_DEADLOCKS: &str = "lock.deadlocks";
    /// Lock waits abandoned on timeout.
    pub const LOCK_TIMEOUTS: &str = "lock.timeouts";

    /// Transactions begun.
    pub const TXN_BEGINS: &str = "txn.begins";
    /// Transactions committed.
    pub const TXN_COMMITS: &str = "txn.commits";
    /// Transactions rolled back.
    pub const TXN_ABORTS: &str = "txn.aborts";

    /// Generic-operation record inserts.
    pub const DML_INSERTS: &str = "dml.inserts";
    /// Generic-operation record updates.
    pub const DML_UPDATES: &str = "dml.updates";
    /// Generic-operation record deletes.
    pub const DML_DELETES: &str = "dml.deletes";
    /// Generic-operation point fetches.
    pub const DML_FETCHES: &str = "dml.fetches";

    /// Relation scans opened.
    pub const SCAN_OPENS: &str = "scan.opens";
    /// Records produced by scans (post-predicate).
    pub const SCAN_ROWS: &str = "scan.rows";
    /// Histogram: records produced per scan.
    pub const SCAN_ROWS_PER_SCAN: &str = "scan.rows_per_scan";
    /// Snapshot scans whose end-of-stream delta sweep surfaced records a
    /// concurrent writer had deleted or moved (those records are emitted
    /// after the regular stream, so key order was best-effort).
    pub const SCAN_DELTA_SWEEPS: &str = "scan.delta_sweeps";

    /// Attachment side-effect invocations (index maintenance, checks...).
    pub const ATT_INVOCATIONS: &str = "att.invocations";
    /// Attachment vetoes (constraint rejections) observed.
    pub const ATT_VETOES: &str = "att.vetoes";
    /// Attachment access-path probes (scans opened through an attachment).
    pub const ATT_PROBES: &str = "att.probes";

    /// Relations quarantined after unrecoverable corruption.
    pub const QUARANTINE_EVENTS: &str = "quarantine.events";
    /// Quarantines lifted (manually or by the repair pipeline).
    pub const QUARANTINE_CLEARED: &str = "quarantine.cleared";
    /// Incident reports evicted from the bounded incident ring.
    pub const INCIDENTS_EVICTED: &str = "incidents.evicted";

    /// Scrub passes completed (one per `scrub_relation` call).
    pub const SCRUB_RUNS: &str = "scrub.runs";
    /// Pages checksum-verified by the scrubber.
    pub const SCRUB_PAGES: &str = "scrub.pages";
    /// Corruption findings (bad page or base↔attachment disagreement).
    pub const SCRUB_CORRUPT: &str = "scrub.corrupt";

    /// Repair attempts started (including retries).
    pub const REPAIR_ATTEMPTS: &str = "repair.attempts";
    /// Attachments rebuilt from their base relation.
    pub const REPAIR_REBUILDS: &str = "repair.rebuilds";
    /// Base relations salvaged (readable records recovered).
    pub const REPAIR_SALVAGES: &str = "repair.salvages";
    /// Records lost to salvage (unreadable at repair time).
    pub const REPAIR_RECORDS_LOST: &str = "repair.records_lost";
    /// Repairs that ended in the terminal (permanently damaged) state.
    pub const REPAIR_FAILURES: &str = "repair.failures";

    /// SQL statements executed through a session.
    pub const SQL_STATEMENTS: &str = "sql.statements";
    /// Plan-cache lookups served from cache.
    pub const PLAN_CACHE_HITS: &str = "plan.cache_hits";
    /// Plan-cache lookups that compiled a fresh plan.
    pub const PLAN_CACHE_MISSES: &str = "plan.cache_misses";
    /// Histogram: |estimated - actual| row-count error per analyzed
    /// access node (recorded by EXPLAIN ANALYZE).
    pub const PLANNER_MISESTIMATE: &str = "planner.misestimate";

    /// I/O attempts retried after a transient fault or checksum failure.
    pub const IO_RETRIES: &str = "io.retries";

    /// Scans dispatched in lock-free snapshot-visibility mode.
    pub const MVCC_SNAPSHOT_SCANS: &str = "mvcc.snapshot_scans";
    /// Scan/fetch reads that consulted a version chain (a writer was or
    /// had recently been in flight on the record).
    pub const MVCC_VERSION_READS: &str = "mvcc.version_reads";
    /// Uncommitted after-images stamped into the version store by DML.
    pub const MVCC_VERSIONS_RECORDED: &str = "mvcc.versions_recorded";
    /// Version chains reclaimed by the low-water garbage collector.
    pub const MVCC_GC_RECLAIMED: &str = "mvcc.gc_reclaimed";
}

/// Standard bucket bounds for "rows/frames per operation" histograms.
pub const SIZE_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pool.hits");
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Idempotent registration: same handle under the same name.
        assert_eq!(reg.counter("pool.hits").get(), 5);

        let g = reg.gauge("pool.dirty");
        g.incr();
        g.incr();
        g.decr();
        assert_eq!(g.get(), 1);
        g.add(-3);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("scan.rows_per_scan", &[1, 10, 100]);
        h.record(0);
        h.record(1); // <=1
        h.record(5); // <=10
        h.record(10); // <=10
        h.record(1000); // overflow
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1016);
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
    }

    #[test]
    fn snapshot_is_sorted_and_comparable() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        // Register in different orders; snapshots must still agree.
        a.counter("z.last").add(2);
        a.counter("a.first").add(1);
        b.counter("a.first").add(1);
        b.counter("z.last").add(2);
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa, sb);
        assert_eq!(sa.counters[0].0, "a.first");
        assert_eq!(sa.counter("z.last"), 2);
        assert_eq!(sa.counter("missing"), 0);
    }

    #[test]
    fn ring_sink_bounds_and_drains() {
        let reg = MetricsRegistry::new();
        // No sink installed: emit is a no-op.
        reg.emit(ObsEvent {
            layer: "pool",
            op: "fetch",
            target: 1,
            detail: 0,
        });
        let sink = RingSink::new(2);
        reg.set_sink(sink.clone());
        for i in 0..5 {
            reg.emit(ObsEvent {
                layer: "wal",
                op: "append",
                target: i,
                detail: 0,
            });
        }
        let events = sink.drain();
        assert_eq!(events.len(), 2, "ring keeps only the newest cap events");
        assert_eq!(events[0].target, 3);
        assert_eq!(events[1].target, 4);
        reg.clear_sink();
        reg.emit(ObsEvent {
            layer: "wal",
            op: "append",
            target: 9,
            detail: 0,
        });
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_counts_evictions_and_numbers_events() {
        let sink = RingSink::new(2);
        assert_eq!(sink.evicted(), 0);
        for i in 0..5 {
            sink.record(ObsEvent {
                layer: "wal",
                op: "append",
                target: i,
                detail: 0,
            });
        }
        assert_eq!(sink.evicted(), 3, "5 events through a cap-2 ring drop 3");
        assert_eq!(sink.total_recorded(), 5);
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 2, "snapshot does not drain");
        assert_eq!(sink.len(), 2);
        let numbered = sink.drain_numbered();
        assert_eq!(numbered.len(), 2);
        // Sequences 0..=2 were evicted; the survivors keep their global ids.
        assert_eq!(numbered[0].0, 3);
        assert_eq!(numbered[0].1.target, 3);
        assert_eq!(numbered[1].0, 4);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_escapes_hostile_names() {
        let reg = MetricsRegistry::new();
        reg.counter("evil\"name\\with\ncontrol").add(7);
        let json = reg.snapshot().to_json();
        assert!(
            json.contains("\"evil\\\"name\\\\with\\u000acontrol\":7"),
            "{json}"
        );
    }

    #[test]
    fn json_rendering() {
        let reg = MetricsRegistry::new();
        reg.counter("wal.appends").add(3);
        reg.gauge("pool.dirty").set(2);
        reg.histogram("wal.force_batch", &[1, 8]).record(4);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"wal.appends\":3"), "{json}");
        assert!(json.contains("\"pool.dirty\":2"), "{json}");
        assert!(
            json.contains(
                "\"wal.force_batch\":{\"count\":1,\"sum\":4,\"bounds\":[1,8],\"buckets\":[0,1,0]}"
            ),
            "{json}"
        );
    }
}
