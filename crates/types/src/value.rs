//! Typed field values.
//!
//! [`Value`] is the common field value representation exchanged between the
//! generic operations of storage methods, attachments and the common
//! services predicate evaluator. [`DataType`] is its schema-level type.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{DmxError, Result};
use crate::rect::Rect;

/// Schema-level data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Bytes,
    Rect,
}

impl DataType {
    /// Parses a type name as it appears in the mini data definition
    /// language (`INT`, `FLOAT`, `STRING`/`STR`, `BOOL`, `BYTES`, `RECT`).
    pub fn parse(s: &str) -> Result<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(DataType::Float),
            "STR" | "STRING" | "TEXT" | "VARCHAR" | "CHAR" => Ok(DataType::Str),
            "BYTES" | "BLOB" => Ok(DataType::Bytes),
            "RECT" => Ok(DataType::Rect),
            other => Err(DmxError::InvalidArg(format!("unknown data type {other}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Bytes => "BYTES",
            DataType::Rect => "RECT",
        };
        f.write_str(s)
    }
}

/// A single field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Bytes(Vec<u8>),
    Rect(Rect),
}

impl Value {
    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Rect(_) => Some(DataType::Rect),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True when the value matches `ty` or is null (nulls are typeless and
    /// admissible in any nullable column).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(t) => t == ty || (t == DataType::Int && ty == DataType::Float),
        }
    }

    /// Total order over values, used for sorting and key comparison. The
    /// order is: `Null` first, then by type rank (Bool, Int/Float merged
    /// numerically, Str, Bytes, Rect), then by value. Ints and floats
    /// compare numerically so mixed-type numeric keys behave sensibly.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Bytes(_) => 4,
                Rect(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Rect(a), Rect(b)) => (a.xlo, a.ylo, a.xhi, a.yhi)
                .partial_cmp(&(b.xlo, b.ylo, b.xhi, b.yhi))
                .unwrap_or(Ordering::Equal),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Extracts an `i64`, coercing bools; errors otherwise.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(DmxError::TypeMismatch(format!("expected INT, got {other}"))),
        }
    }

    /// Extracts an `f64`, coercing ints.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DmxError::TypeMismatch(format!(
                "expected FLOAT, got {other}"
            ))),
        }
    }

    /// Extracts a `bool`.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DmxError::TypeMismatch(format!(
                "expected BOOL, got {other}"
            ))),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DmxError::TypeMismatch(format!(
                "expected STRING, got {other}"
            ))),
        }
    }

    /// Extracts a rectangle.
    pub fn as_rect(&self) -> Result<Rect> {
        match self {
            Value::Rect(r) => Ok(*r),
            other => Err(DmxError::TypeMismatch(format!(
                "expected RECT, got {other}"
            ))),
        }
    }

    /// Rough in-memory size, used by the cost model for record width
    /// estimates.
    pub fn estimated_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            Value::Rect(_) => 33,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}'", hex(b)),
            Value::Rect(r) => write!(f, "RECT({}, {}, {}, {})", r.xlo, r.ylo, r.xhi, r.yhi),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Rect> for Value {
    fn from(v: Rect) -> Self {
        Value::Rect(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_type_names() {
        assert_eq!(DataType::parse("int").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("VARCHAR").unwrap(), DataType::Str);
        assert_eq!(DataType::parse("rect").unwrap(), DataType::Rect);
        assert!(DataType::parse("decimal").is_err());
    }

    #[test]
    fn total_cmp_numeric_merge() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn total_cmp_null_first_and_cross_type_rank() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Bool(true).total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(9)),
            Ordering::Greater
        );
    }

    #[test]
    fn conforms_allows_null_and_int_to_float_widening() {
        assert!(Value::Null.conforms_to(DataType::Str));
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(!Value::Str("x".into()).conforms_to(DataType::Int));
    }

    #[test]
    fn accessors_and_coercions() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
    }

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("bob".into()).to_string(), "'bob'");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "x'dead'");
    }
}
