//! Foundational types for the Starburst data management extension
//! architecture (DMX) reproduction.
//!
//! This crate carries the vocabulary shared by every other crate in the
//! workspace: typed [`Value`]s and [`Schema`]s, the record wire format
//! ([`Record`], [`RecordRef`]), the order-preserving key encoding used for
//! storage-method record keys and access-path keys ([`key`]), the
//! attribute/value lists that the paper's extended data definition language
//! passes to extensions ([`AttrList`]), and the identifier newtypes used to
//! index the procedure vectors ([`ids`]).
//!
//! Nothing in here depends on storage, logging or transactions; it is the
//! common record and field value representation the paper calls out as the
//! "most obvious interface convention" of the common services environment.

pub mod attr;
pub mod bytes;
pub mod crc;
pub mod error;
pub mod fault;
pub mod ids;
pub mod key;
pub mod obs;
pub mod record;
pub mod rect;
pub mod schema;
pub mod sync;
pub mod testrng;
pub mod value;

pub use attr::AttrList;
pub use error::{DmxError, Result};
pub use fault::{FaultDecision, FaultInjector, FaultKind, FaultPlan};
pub use ids::{
    AttInstanceId, AttTypeId, FieldId, FileId, Lsn, PageId, RelationId, ScanId, SmTypeId, TxnId,
};
pub use key::RecordKey;
pub use obs::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, ObsEvent, ObsSink, RingSink,
};
pub use record::{Record, RecordRef};
pub use rect::Rect;
pub use schema::{ColumnDef, Schema};
pub use value::{DataType, Value};
