//! Record keys and order-preserving key encoding.
//!
//! The paper leaves the definition and interpretation of record keys to the
//! storage method: heap files use record addresses (RIDs), B-tree-organized
//! relations compose keys from record fields, and access paths map their own
//! input keys to record keys. [`RecordKey`] is therefore an *opaque* byte
//! string to everyone but the extension that minted it.
//!
//! [`encode_values`] provides the shared "memcomparable" encoding: the
//! byte-wise (unsigned lexicographic) order of two encoded keys equals the
//! [`Value::total_cmp`] order of the underlying value tuples. B-trees and
//! other ordered structures compare keys with plain `memcmp`.

use crate::error::{DmxError, Result};
use crate::rect::Rect;
use crate::value::Value;

/// An opaque record key, defined and interpreted by a storage method (or,
/// for access-path keys, by an attachment).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RecordKey(pub Vec<u8>);

impl RecordKey {
    /// Wraps raw key bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        RecordKey(bytes)
    }

    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-length key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for RecordKey {
    fn from(v: Vec<u8>) -> Self {
        RecordKey(v)
    }
}

// Type prefix bytes. They are chosen so cross-type byte order matches
// `Value::total_cmp`'s type rank (null < bool < numeric < str < bytes <
// rect). Ints and floats share the NUM prefix and a common numeric
// encoding so they interleave numerically.
const P_NULL: u8 = 0x01;
const P_BOOL: u8 = 0x02;
const P_NUM: u8 = 0x03;
const P_STR: u8 = 0x04;
const P_BYTES: u8 = 0x05;
const P_RECT: u8 = 0x06;

/// Encodes one value into `out` such that byte order equals value order.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(P_NULL),
        Value::Bool(b) => {
            out.push(P_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(P_NUM);
            encode_f64_ordered(*i as f64, out);
            // Disambiguate ints beyond f64 precision by appending the
            // sign-flipped big-endian integer; for values within f64
            // precision this is a consistent tiebreak that never reorders.
            out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Value::Float(x) => {
            out.push(P_NUM);
            encode_f64_ordered(*x, out);
            // Tiebreak slot, mirrors the Int arm so Int(2) == Float(2.0)
            // compare equal on the primary 8 bytes then deterministically
            // on the tiebreak.
            let trunc = if x.is_finite() && x.abs() < 9.2e18 {
                *x as i64
            } else {
                0
            };
            out.extend_from_slice(&((trunc as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Value::Str(s) => {
            out.push(P_STR);
            encode_bytes_escaped(s.as_bytes(), out);
        }
        Value::Bytes(b) => {
            out.push(P_BYTES);
            encode_bytes_escaped(b, out);
        }
        Value::Rect(r) => {
            out.push(P_RECT);
            for f in [r.xlo, r.ylo, r.xhi, r.yhi] {
                encode_f64_ordered(f, out);
            }
        }
    }
}

/// Encodes a tuple of values into a single order-preserving byte key.
pub fn encode_values(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 10);
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

/// IEEE-754 total-order byte transform: flip all bits of negatives, flip
/// only the sign bit of non-negatives, then emit big-endian.
fn encode_f64_ordered(x: f64, out: &mut Vec<u8>) {
    let bits = x.to_bits();
    let flipped = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    };
    out.extend_from_slice(&flipped.to_be_bytes());
}

fn decode_f64_ordered(b: [u8; 8]) -> f64 {
    let bits = u64::from_be_bytes(b);
    let orig = if bits & (1 << 63) != 0 {
        bits ^ (1 << 63)
    } else {
        !bits
    };
    f64::from_bits(orig)
}

/// Escaped byte-string encoding: every 0x00 becomes 0x00 0xFF, and the
/// string ends with 0x00 0x00. Lexicographic order is preserved and the
/// terminator sorts before any continuation.
fn encode_bytes_escaped(data: &[u8], out: &mut Vec<u8>) {
    for &b in data {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

fn decode_bytes_escaped(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| DmxError::Corrupt("truncated escaped bytes".into()))?;
        *pos += 1;
        if b != 0x00 {
            out.push(b);
            continue;
        }
        let next = *buf
            .get(*pos)
            .ok_or_else(|| DmxError::Corrupt("truncated escape".into()))?;
        *pos += 1;
        match next {
            0x00 => return Ok(out),
            0xFF => out.push(0x00),
            other => return Err(DmxError::Corrupt(format!("bad escape byte {other}"))),
        }
    }
}

/// Decodes a key produced by [`encode_values`] back into values. Ints and
/// floats both decode as their numeric value; an original `Int` is
/// recovered as `Int` when the tiebreak matches an exact integer, otherwise
/// as `Float`.
pub fn decode_values(buf: &[u8], expect: usize) -> Result<Vec<Value>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(expect);
    let corrupt = || DmxError::Corrupt("truncated key".into());
    for _ in 0..expect {
        let prefix = *buf.get(pos).ok_or_else(corrupt)?;
        pos += 1;
        let v = match prefix {
            P_NULL => Value::Null,
            P_BOOL => {
                let b = *buf.get(pos).ok_or_else(corrupt)?;
                pos += 1;
                Value::Bool(b != 0)
            }
            P_NUM => {
                let fb = crate::bytes::array::<8>(buf, pos).ok_or_else(corrupt)?;
                let x = decode_f64_ordered(fb);
                pos += 8;
                let tb = crate::bytes::array::<8>(buf, pos).ok_or_else(corrupt)?;
                let tie = (u64::from_be_bytes(tb) ^ (1u64 << 63)) as i64;
                pos += 8;
                if x.fract() == 0.0 && x.is_finite() && tie as f64 == x {
                    Value::Int(tie)
                } else {
                    Value::Float(x)
                }
            }
            P_STR => {
                let raw = decode_bytes_escaped(buf, &mut pos)?;
                Value::Str(
                    String::from_utf8(raw)
                        .map_err(|_| DmxError::Corrupt("key string not utf8".into()))?,
                )
            }
            P_BYTES => Value::Bytes(decode_bytes_escaped(buf, &mut pos)?),
            P_RECT => {
                let mut f = [0f64; 4];
                for slot in &mut f {
                    let fb = crate::bytes::array::<8>(buf, pos).ok_or_else(corrupt)?;
                    *slot = decode_f64_ordered(fb);
                    pos += 8;
                }
                Value::Rect(Rect {
                    xlo: f[0],
                    ylo: f[1],
                    xhi: f[2],
                    yhi: f[3],
                })
            }
            other => return Err(DmxError::Corrupt(format!("bad key prefix {other}"))),
        };
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrng::TestRng;
    use std::cmp::Ordering;

    fn enc1(v: &Value) -> Vec<u8> {
        encode_values(std::slice::from_ref(v))
    }

    #[test]
    fn int_order_preserved() {
        let samples = [i64::MIN, -100, -1, 0, 1, 7, 1 << 40, i64::MAX];
        for w in samples.windows(2) {
            assert!(
                enc1(&Value::Int(w[0])) < enc1(&Value::Int(w[1])),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn float_order_preserved_including_negatives() {
        let samples = [f64::NEG_INFINITY, -1e9, -1.5, -0.0, 0.5, 2.0, 1e300];
        for w in samples.windows(2) {
            assert!(enc1(&Value::Float(w[0])) < enc1(&Value::Float(w[1])));
        }
    }

    #[test]
    fn int_float_interleave() {
        assert!(enc1(&Value::Int(2)) < enc1(&Value::Float(2.5)));
        assert!(enc1(&Value::Float(1.5)) < enc1(&Value::Int(2)));
        assert_eq!(enc1(&Value::Int(2)), enc1(&Value::Float(2.0)));
    }

    #[test]
    fn string_order_with_embedded_zero_and_prefixes() {
        let a = Value::Bytes(vec![1, 0]);
        let b = Value::Bytes(vec![1, 0, 0]);
        let c = Value::Bytes(vec![1, 1]);
        assert!(enc1(&a) < enc1(&b));
        assert!(enc1(&b) < enc1(&c));
        // prefix sorts first
        assert!(enc1(&Value::from("ab")) < enc1(&Value::from("abc")));
    }

    #[test]
    fn null_sorts_first() {
        for v in [
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::from(""),
            Value::Bytes(vec![]),
        ] {
            assert!(enc1(&Value::Null) < enc1(&v));
        }
    }

    #[test]
    fn composite_keys_compare_fieldwise() {
        let k1 = encode_values(&[Value::Int(1), Value::from("zz")]);
        let k2 = encode_values(&[Value::Int(2), Value::from("aa")]);
        assert!(k1 < k2, "first field dominates");
        let k3 = encode_values(&[Value::Int(1), Value::from("a")]);
        assert!(k3 < k1);
    }

    #[test]
    fn decode_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::from("hi\0there"),
            Value::Bytes(vec![0, 1, 0]),
            Value::Rect(Rect::new(1.0, 2.0, 3.0, 4.0)),
        ];
        let key = encode_values(&vals);
        let back = decode_values(&key, vals.len()).unwrap();
        assert_eq!(vals, back);
    }

    #[test]
    fn decode_rejects_truncation() {
        let key = encode_values(&[Value::Int(5), Value::from("abc")]);
        for cut in 0..key.len() {
            assert!(decode_values(&key[..cut], 2).is_err(), "cut at {cut}");
        }
    }

    /// Deterministic random value generator (replaces the old proptest
    /// strategy; failures reproduce exactly from the fixed seed).
    fn gen_value(rng: &mut TestRng) -> Value {
        match rng.below(6) {
            0 => Value::Null,
            1 => Value::Bool(rng.below(2) == 1),
            2 => Value::Int(rng.next_u64() as i64),
            // Finite floats only: NaN has no meaningful user-visible order.
            3 => Value::Float((rng.range_i64(-1_000_000_000, 1_000_000_000) as f64) / 3.0),
            4 => {
                let len = rng.index(13);
                // letters plus embedded NULs, the old proptest alphabet
                let s: String = (0..len)
                    .map(|_| {
                        if rng.below(8) == 0 {
                            '\0'
                        } else {
                            (b'a' + rng.below(26) as u8) as char
                        }
                    })
                    .collect();
                Value::Str(s)
            }
            _ => Value::Bytes(rng.bytes(11)),
        }
    }

    /// Byte order of encoded keys must equal `total_cmp` order.
    #[test]
    fn randomized_order_preserving() {
        let mut rng = TestRng::new(0xD1CE);
        for _ in 0..4000 {
            let (a, b) = (gen_value(&mut rng), gen_value(&mut rng));
            let (ka, kb) = (enc1(&a), enc1(&b));
            let byte_ord = ka.cmp(&kb);
            let val_ord = a.total_cmp(&b);
            if val_ord != Ordering::Equal {
                assert_eq!(byte_ord, val_ord, "a={a:?} b={b:?}");
            }
        }
    }

    /// Encoding then decoding returns an equal tuple (numeric types may
    /// swap Int/Float spelling but compare equal).
    #[test]
    fn randomized_roundtrip() {
        let mut rng = TestRng::new(0xBEEF);
        for _ in 0..1500 {
            let vals: Vec<Value> = (0..rng.index(5)).map(|_| gen_value(&mut rng)).collect();
            let key = encode_values(&vals);
            let back = decode_values(&key, vals.len()).unwrap();
            assert_eq!(back.len(), vals.len());
            for (x, y) in vals.iter().zip(&back) {
                assert_eq!(x.total_cmp(y), Ordering::Equal, "x={x:?} y={y:?}");
            }
        }
    }
}
