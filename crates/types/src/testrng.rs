//! Deterministic pseudo-random generator for tests and simulations.
//!
//! The workspace builds without external dependencies, so the randomized
//! tests that previously used `rand`/`proptest` drive this SplitMix64
//! generator from fixed seeds instead. Determinism is a feature: a failing
//! randomized test reproduces exactly from its seed.

/// SplitMix64: tiny, statistically solid for test-input generation, and
/// trivially seedable. Not for cryptography.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose whole sequence is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-input scale.
        self.next_u64() % bound.max(1)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Random byte vector with length in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.index(max_len + 1);
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = TestRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // and the shuffle actually moved something
        assert_ne!(v, sorted);
    }

    #[test]
    fn range_and_bytes_shapes() {
        let mut r = TestRng::new(11);
        for _ in 0..200 {
            let x = r.range_i64(-50, 50);
            assert!((-50..50).contains(&x));
            assert!(r.bytes(12).len() <= 12);
        }
    }
}
