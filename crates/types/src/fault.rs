//! Deterministic fault injection for the simulated I/O layer.
//!
//! A [`FaultPlan`] maps global I/O indices to [`FaultKind`]s; a
//! [`FaultInjector`] executes the plan against a monotonically increasing
//! operation counter that the page store *and* the stable log share, so a
//! single plan sweeps the union of page and log I/O. Everything is seeded
//! and wall-clock free: the same plan over the same workload injects the
//! same faults at the same operations, which is what makes the crash-point
//! sweep in `tests/fault_sweep.rs` reproducible.
//!
//! This module lives in `dmx-types` because `dmx-page` and `dmx-wal` sit
//! side by side in the layering DAG and can only share code through here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;
use crate::testrng::TestRng;
use crate::{DmxError, Result};

/// What to do to the I/O operation a plan entry fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with [`DmxError::IoTransient`]; nothing is
    /// persisted. A retry of the same operation proceeds normally.
    TransientError,
    /// Fail the operation with [`DmxError::Io`]; nothing is persisted.
    PermanentError,
    /// For writes: persist only a prefix of the bytes (a torn write), then
    /// hard-crash — every later operation fails. Reads treat this as
    /// [`FaultKind::Crash`].
    Torn,
    /// Let the operation through, but flip one byte of the persisted (or
    /// returned) image, simulating silent media rot.
    FlipByte,
    /// Hard crash at this operation: it and every later operation fail
    /// with [`DmxError::Io`] until the injector is cleared.
    Crash,
    /// Fail the operation with [`DmxError::OutOfSpace`]; nothing is
    /// persisted. Models ENOSPC on page allocation or log append: the
    /// medium is healthy but full, so the statement must abort cleanly
    /// and the engine degrade to read-only rather than wedge.
    OutOfSpace,
}

/// The decision an injector hands back to an I/O wrapper for one
/// operation. `Torn` and `FlipByte` carry a raw random value the wrapper
/// maps onto its buffer (the injector does not know buffer sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// No fault: perform the operation normally.
    Proceed,
    /// Fail with [`DmxError::IoTransient`], persist nothing.
    FailTransient,
    /// Fail with [`DmxError::Io`], persist nothing.
    FailPermanent,
    /// Persist only a `raw`-derived prefix of the write, then crash.
    Torn { raw: u64 },
    /// Flip one `raw`-selected bit of the image (see
    /// [`FaultDecision::flip_target`] for the exact mapping).
    FlipByte { raw: u64 },
    /// Fail with [`DmxError::Io`]; the injector is now in the crashed
    /// state and every later decision is `Crash` too.
    Crash,
    /// Fail with [`DmxError::OutOfSpace`], persist nothing. Not sticky at
    /// the injector level: stickiness (read-only degraded mode) is an
    /// engine-level policy decision.
    OutOfSpace,
}

impl FaultDecision {
    /// The byte offset and bit mask a `FlipByte { raw }` decision selects
    /// in a buffer of `len` bytes: byte `raw % len`, bit
    /// `1 << ((raw >> 32) % 8)`. Returns `None` for an empty buffer.
    /// Every wrapper maps through here so implementations cannot diverge.
    pub fn flip_target(raw: u64, len: usize) -> Option<(usize, u8)> {
        if len == 0 {
            return None;
        }
        Some(((raw as usize) % len, 1u8 << ((raw >> 32) % 8)))
    }
}

/// A seeded schedule of faults keyed by global I/O index (0-based: the
/// first read or write issued anywhere in the environment is index 0).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: BTreeMap::new(),
        }
    }

    /// Schedules `kind` at global I/O index `k`, replacing any prior entry.
    pub fn at(mut self, k: u64, kind: FaultKind) -> Self {
        self.faults.insert(k, kind);
        self
    }

    /// Schedules a transient failure at I/O `k`.
    pub fn transient_at(self, k: u64) -> Self {
        self.at(k, FaultKind::TransientError)
    }

    /// Schedules a permanent failure at I/O `k`.
    pub fn permanent_at(self, k: u64) -> Self {
        self.at(k, FaultKind::PermanentError)
    }

    /// Schedules a torn write at I/O `k`.
    pub fn torn_at(self, k: u64) -> Self {
        self.at(k, FaultKind::Torn)
    }

    /// Schedules a byte flip at I/O `k`.
    pub fn flip_at(self, k: u64) -> Self {
        self.at(k, FaultKind::FlipByte)
    }

    /// Schedules a hard crash at I/O `k`.
    pub fn crash_at(self, k: u64) -> Self {
        self.at(k, FaultKind::Crash)
    }

    /// Schedules an out-of-space failure at I/O `k`.
    pub fn enospc_at(self, k: u64) -> Self {
        self.at(k, FaultKind::OutOfSpace)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan schedules nothing (pass-through).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Executes a [`FaultPlan`]: every wrapped I/O operation calls
/// [`FaultInjector::decide`] exactly once, advancing the shared counter.
pub struct FaultInjector {
    ops: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
    inner: Mutex<InjectorState>,
}

struct InjectorState {
    faults: BTreeMap<u64, FaultKind>,
    rng: TestRng,
}

impl FaultInjector {
    /// Builds an injector executing `plan`. Share the returned `Arc`
    /// between the disk and log wrappers so one counter spans both.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultInjector {
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            inner: Mutex::new(InjectorState {
                faults: plan.faults,
                rng: TestRng::new(plan.seed ^ 0x9E37_79B9_7F4A_7C15),
            }),
        })
    }

    /// A pass-through injector: counts operations, injects nothing.
    pub fn passthrough() -> Arc<Self> {
        FaultInjector::new(FaultPlan::default())
    }

    /// Decides the fate of the next I/O operation and advances the
    /// counter. `is_write` gates write-only faults: a torn *read* makes no
    /// sense (nothing is persisted), so `Torn` on a read degrades to
    /// `Crash`.
    pub fn decide(&self, is_write: bool) -> FaultDecision {
        let k = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return FaultDecision::Crash;
        }
        let mut st = self.inner.lock();
        let kind = match st.faults.get(&k) {
            Some(kind) => *kind,
            None => return FaultDecision::Proceed,
        };
        self.injected.fetch_add(1, Ordering::SeqCst);
        match kind {
            FaultKind::TransientError => FaultDecision::FailTransient,
            FaultKind::PermanentError => FaultDecision::FailPermanent,
            FaultKind::Torn if is_write => {
                self.crashed.store(true, Ordering::SeqCst);
                FaultDecision::Torn {
                    raw: st.rng.next_u64(),
                }
            }
            FaultKind::Torn | FaultKind::Crash => {
                self.crashed.store(true, Ordering::SeqCst);
                FaultDecision::Crash
            }
            FaultKind::FlipByte => FaultDecision::FlipByte {
                raw: st.rng.next_u64(),
            },
            FaultKind::OutOfSpace => FaultDecision::OutOfSpace,
        }
    }

    /// Total I/O operations observed (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// True once a `Crash`/`Torn` fault fired; all I/O fails until
    /// [`FaultInjector::clear`].
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Drops every remaining scheduled fault and lifts the crashed state,
    /// turning this injector into a pass-through. The sweep harness calls
    /// this at "reopen" so recovery runs against healthy I/O while the
    /// surviving disk/log keep their wrappers.
    pub fn clear(&self) {
        self.inner.lock().faults.clear();
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// The error a failed operation should surface, given the decision.
    /// Returns `None` for decisions that let the operation proceed
    /// (`Proceed`, `FlipByte`) — `Torn` is reported as a crash *after* the
    /// wrapper persists the prefix.
    pub fn error_for(decision: FaultDecision, what: &str) -> Option<DmxError> {
        match decision {
            FaultDecision::Proceed | FaultDecision::FlipByte { .. } => None,
            FaultDecision::FailTransient => {
                Some(DmxError::IoTransient(format!("injected transient {what}")))
            }
            FaultDecision::FailPermanent => {
                Some(DmxError::Io(format!("injected permanent {what}")))
            }
            FaultDecision::Torn { .. } | FaultDecision::Crash => {
                Some(DmxError::Io(format!("simulated crash during {what}")))
            }
            FaultDecision::OutOfSpace => {
                Some(DmxError::OutOfSpace(format!("no space left during {what}")))
            }
        }
    }
}

/// Deterministic bounded backoff for transient-I/O retries: no wall
/// clock, just a growing number of scheduler yields. Attempt 0 yields
/// once, attempt `a` yields `2^a` times (capped).
pub fn backoff(attempt: u32) -> Result<()> {
    let spins = 1u32 << attempt.min(8);
    for _ in 0..spins {
        std::thread::yield_now();
    }
    Ok(())
}

/// Retries `op` up to `max_retries` extra times while it reports a
/// transient I/O error, backing off deterministically between attempts.
/// A still-transient failure after the last retry is promoted to the
/// permanent [`DmxError::Io`] so callers never see `IoTransient` escape a
/// retry loop.
pub fn with_io_retries<T>(max_retries: u32, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Err(DmxError::IoTransient(m)) if attempt < max_retries => {
                attempt += 1;
                backoff(attempt)?;
                let _ = m;
            }
            Err(DmxError::IoTransient(m)) => {
                return Err(DmxError::Io(format!(
                    "transient i/o did not clear after {attempt} retries: {m}"
                )))
            }
            other => return other,
        }
    }
}

/// Default retry budget used by the buffer manager and the log force path.
pub const MAX_IO_RETRIES: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_passthrough() {
        let inj = FaultInjector::passthrough();
        for _ in 0..10 {
            assert_eq!(inj.decide(true), FaultDecision::Proceed);
        }
        assert_eq!(inj.ops(), 10);
        assert_eq!(inj.injected(), 0);
        assert!(!inj.is_crashed());
    }

    #[test]
    fn faults_fire_at_exact_indices() {
        let plan = FaultPlan::new(7).transient_at(1).permanent_at(3);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(false), FaultDecision::Proceed);
        assert_eq!(inj.decide(false), FaultDecision::FailTransient);
        assert_eq!(inj.decide(false), FaultDecision::Proceed);
        assert_eq!(inj.decide(true), FaultDecision::FailPermanent);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn crash_is_sticky_until_cleared() {
        let inj = FaultInjector::new(FaultPlan::new(1).crash_at(0));
        assert_eq!(inj.decide(true), FaultDecision::Crash);
        assert_eq!(inj.decide(false), FaultDecision::Crash);
        assert!(inj.is_crashed());
        inj.clear();
        assert_eq!(inj.decide(false), FaultDecision::Proceed);
    }

    #[test]
    fn torn_write_crashes_torn_read_degrades() {
        let inj = FaultInjector::new(FaultPlan::new(2).torn_at(0));
        assert!(matches!(inj.decide(true), FaultDecision::Torn { .. }));
        assert!(inj.is_crashed());

        let inj = FaultInjector::new(FaultPlan::new(2).torn_at(0));
        assert_eq!(inj.decide(false), FaultDecision::Crash);
    }

    #[test]
    fn out_of_space_fails_once_without_crashing() {
        let inj = FaultInjector::new(FaultPlan::new(4).enospc_at(1));
        assert_eq!(inj.decide(true), FaultDecision::Proceed);
        assert_eq!(inj.decide(true), FaultDecision::OutOfSpace);
        assert!(!inj.is_crashed(), "ENOSPC is not a crash");
        assert_eq!(inj.decide(true), FaultDecision::Proceed);
        let e = FaultInjector::error_for(FaultDecision::OutOfSpace, "allocate_page").unwrap();
        assert!(matches!(e, DmxError::OutOfSpace(_)));
        assert!(!e.is_transient_io(), "ENOSPC must not be auto-retried");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let inj = FaultInjector::new(FaultPlan::new(42).flip_at(2).flip_at(5));
            (0..8).map(|_| inj.decide(true)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retry_helper_promotes_exhausted_transient() {
        let mut calls = 0;
        let out: Result<()> = with_io_retries(2, || {
            calls += 1;
            Err(DmxError::IoTransient("x".into()))
        });
        assert!(matches!(out, Err(DmxError::Io(_))));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out = with_io_retries(3, || {
            calls += 1;
            if calls < 3 {
                Err(DmxError::IoTransient("x".into()))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
    }
}
