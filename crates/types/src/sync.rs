//! Std-only synchronization primitives with explicit poison recovery.
//!
//! The runtime crates must build without any external dependency, so this
//! module wraps `std::sync` rather than `parking_lot`. The one semantic
//! difference is lock poisoning: std locks poison when a holder panics.
//! Panicking while holding a lock is itself a discipline violation (the
//! `xtask verify` pass bans panics in runtime code), so a poisoned lock
//! indicates a bug that has already been reported elsewhere; these wrappers
//! recover the inner guard and continue rather than propagating a second,
//! less informative failure. That recovery is the single place in the
//! workspace where poisoning is handled, which keeps `unwrap()` off every
//! lock acquisition site.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never fails: a poisoned mutex is
/// explicitly recovered (see module docs).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose acquisitions never fail: a poisoned lock is
/// explicitly recovered (see module docs).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poison is recovered.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access. Poison is recovered.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared read access without blocking; `None` when the lock
    /// is contended. Poison is recovered.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking; `None` when the
    /// lock is contended. Poison is recovered.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Condition variable paired with [`Mutex`]. Timed waits consume and
/// return the guard (std's API shape), with poison recovered on wake-up.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wake-ups are possible; callers
    /// re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self
                .inner
                .wait(guard.inner)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Blocks until notified or `timeout` elapses, whichever is first.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T> {
        let (inner, _timed_out) = self
            .inner
            .wait_timeout(guard.inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7i32));
        let m2 = Arc::clone(&m);
        // Poison the underlying std mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // The wrapper recovers instead of propagating the poison.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn rwlock_read_write_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let start = Instant::now();
        let g = m.lock();
        let _g = cv.wait_for(g, Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().expect("waiter thread panicked");
    }
}
