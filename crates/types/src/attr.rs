//! Attribute/value lists for extension-specific DDL parameters.
//!
//! The paper extends the data definition language so a `CREATE` statement
//! can name a storage method or attachment type and hand it an attribute /
//! value list of extension-specific parameters (e.g. which device a storage
//! method instance should use). Extensions supply generic operations to
//! *validate* these lists during DDL parsing and to interpret them during
//! execution. [`AttrList`] is that list.

use crate::error::{DmxError, Result};

/// An ordered list of `key = value` string pairs. Keys are matched
/// case-insensitively; duplicate keys are rejected at construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttrList {
    pairs: Vec<(String, String)>,
}

impl AttrList {
    /// An empty list.
    pub fn new() -> Self {
        AttrList::default()
    }

    /// Builds from pairs, rejecting duplicate keys.
    pub fn from_pairs<I, K, V>(pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut list = AttrList::new();
        for (k, v) in pairs {
            list.push(k.into(), v.into())?;
        }
        Ok(list)
    }

    /// Parses `k1 = v1, k2 = v2, …`. Values may be single-quoted (quotes
    /// stripped, doubled quotes unescaped) or bare tokens.
    pub fn parse(text: &str) -> Result<Self> {
        let mut list = AttrList::new();
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Ok(list);
        }
        for piece in split_top_level_commas(trimmed) {
            let (k, v) = piece
                .split_once('=')
                .ok_or_else(|| DmxError::Parse(format!("expected key=value, got '{piece}'")))?;
            let key = k.trim();
            if key.is_empty() {
                return Err(DmxError::Parse(format!("empty key in '{piece}'")));
            }
            list.push(key.to_string(), unquote(v.trim())?)?;
        }
        Ok(list)
    }

    fn push(&mut self, key: String, value: String) -> Result<()> {
        if self.pairs.iter().any(|(k, _)| k.eq_ignore_ascii_case(&key)) {
            return Err(DmxError::InvalidArg(format!("duplicate attribute {key}")));
        }
        self.pairs.push((key, value));
        Ok(())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The raw pairs, in declaration order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Fetches a value by key (case-insensitive).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Fetches a required value, erroring with the extension's name if
    /// absent — the shape extension `validate_params` implementations want.
    pub fn require(&self, key: &str, who: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| DmxError::InvalidArg(format!("{who} requires attribute '{key}'")))
    }

    /// Parses a boolean attribute (`true/false/1/0/yes/no`), defaulting
    /// when absent.
    pub fn get_bool(&self, key: &str, default: bool) -> Result<bool> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" | "on" => Ok(true),
                "false" | "0" | "no" | "off" => Ok(false),
                other => Err(DmxError::InvalidArg(format!(
                    "attribute {key}: expected boolean, got '{other}'"
                ))),
            },
        }
    }

    /// Parses an unsigned integer attribute, defaulting when absent.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<u64>().map_err(|_| {
                DmxError::InvalidArg(format!("attribute {key}: expected integer, got '{v}'"))
            }),
        }
    }

    /// Validates that every present key is in `allowed`; extensions call
    /// this so typos in DDL are reported at parse time, not execution time.
    pub fn check_allowed(&self, allowed: &[&str], who: &str) -> Result<()> {
        for (k, _) in &self.pairs {
            if !allowed.iter().any(|a| a.eq_ignore_ascii_case(k)) {
                return Err(DmxError::InvalidArg(format!(
                    "{who} does not understand attribute '{k}' (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Serializes for descriptor storage.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.pairs.len() as u16).to_le_bytes());
        for (k, v) in &self.pairs {
            for s in [k, v] {
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
        out
    }

    /// Deserializes an [`AttrList::encode`] payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let corrupt = || DmxError::Corrupt("truncated attr list".into());
        let mut pos = 0usize;
        let mut read = |n: usize| -> Result<&[u8]> {
            let s = buf.get(pos..pos + n).ok_or_else(corrupt)?;
            pos += n;
            Ok(s)
        };
        let n = u16::from_le_bytes(read(2)?.try_into().map_err(|_| corrupt())?) as usize;
        let mut list = AttrList::new();
        for _ in 0..n {
            let mut strings = [String::new(), String::new()];
            for s in &mut strings {
                let len = u16::from_le_bytes(read(2)?.try_into().map_err(|_| corrupt())?) as usize;
                *s = String::from_utf8(read(len)?.to_vec())
                    .map_err(|_| DmxError::Corrupt("attr not utf8".into()))?;
            }
            let [k, v] = strings;
            list.push(k, v)?;
        }
        Ok(list)
    }
}

fn unquote(v: &str) -> Result<String> {
    if let Some(inner) = v.strip_prefix('\'') {
        let inner = inner
            .strip_suffix('\'')
            .ok_or_else(|| DmxError::Parse(format!("unterminated quote in '{v}'")))?;
        Ok(inner.replace("''", "'"))
    } else {
        Ok(v.to_string())
    }
}

/// Splits on commas that are not inside single quotes.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quote = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            ',' if !in_quote => {
                // bounds: `start` and `i` are char boundaries ≤ s.len().
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    // bounds: `start` is a char boundary ≤ s.len().
    out.push(s[start..].trim());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_and_quoted() {
        let l =
            AttrList::parse("file = emp.dat, unique=true, comment='a, ''quoted'' value'").unwrap();
        assert_eq!(l.get("FILE"), Some("emp.dat"));
        assert!(l.get_bool("unique", false).unwrap());
        assert_eq!(l.get("comment"), Some("a, 'quoted' value"));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn parse_empty_and_errors() {
        assert!(AttrList::parse("").unwrap().is_empty());
        assert!(AttrList::parse("   ").unwrap().is_empty());
        assert!(AttrList::parse("novalue").is_err());
        assert!(AttrList::parse("=v").is_err());
        assert!(AttrList::parse("k='oops").is_err());
        assert!(AttrList::parse("k=1, K=2").is_err(), "case-insensitive dup");
    }

    #[test]
    fn typed_getters() {
        let l = AttrList::parse("n=42, flag=off").unwrap();
        assert_eq!(l.get_u64("n", 0).unwrap(), 42);
        assert_eq!(l.get_u64("missing", 7).unwrap(), 7);
        assert!(!l.get_bool("flag", true).unwrap());
        assert!(l.get_u64("flag", 0).is_err());
        assert!(l.require("n", "heap").is_ok());
        let err = l.require("device", "heap").unwrap_err();
        assert!(err.to_string().contains("heap"));
    }

    #[test]
    fn check_allowed_catches_typos() {
        let l = AttrList::parse("uniqeu=true").unwrap();
        let err = l.check_allowed(&["unique", "fields"], "btree").unwrap_err();
        assert!(err.to_string().contains("uniqeu"));
        assert!(AttrList::parse("unique=1")
            .unwrap()
            .check_allowed(&["UNIQUE"], "btree")
            .is_ok());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = AttrList::parse("a=1, b='x y', c=").unwrap();
        let back = AttrList::decode(&l.encode()).unwrap();
        assert_eq!(l, back);
        assert!(AttrList::decode(&[9]).is_err());
    }
}
