//! Relation schemas.

use crate::error::{DmxError, Result};
use crate::ids::FieldId;
use crate::value::{DataType, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// An ordered list of columns describing a relation's records.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            // bounds: `i` comes from enumerate() over `columns` itself.
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DmxError::InvalidArg(format!("duplicate column {}", c.name)));
            }
        }
        if columns.len() > u16::MAX as usize {
            return Err(DmxError::InvalidArg("too many columns".into()));
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, id: FieldId) -> Result<&ColumnDef> {
        self.columns
            .get(id as usize)
            .ok_or_else(|| DmxError::InvalidArg(format!("no column with index {id}")))
    }

    /// Finds a column's index by name (case-insensitive).
    pub fn field_id(&self, name: &str) -> Result<FieldId> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(|i| i as FieldId)
            .ok_or_else(|| DmxError::InvalidArg(format!("unknown column {name}")))
    }

    /// Validates a record against this schema: arity, per-column type
    /// conformance, and NOT NULL rules.
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(DmxError::InvalidArg(format!(
                "record has {} values, schema has {} columns",
                values.len(),
                self.columns.len()
            )));
        }
        for (v, c) in values.iter().zip(&self.columns) {
            if v.is_null() && !c.nullable {
                return Err(DmxError::InvalidArg(format!(
                    "column {} is NOT NULL",
                    c.name
                )));
            }
            if !v.conforms_to(c.data_type) {
                return Err(DmxError::TypeMismatch(format!(
                    "column {} expects {}, got {v}",
                    c.name, c.data_type
                )));
            }
        }
        Ok(())
    }

    /// Projects this schema onto a field subset (used for covering access
    /// paths and query projection).
    pub fn project(&self, fields: &[FieldId]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(fields.len());
        for &f in fields {
            cols.push(self.column(f)?.clone());
        }
        Ok(Schema { columns: cols })
    }

    /// Serializes the schema for catalog storage.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.columns.len() as u16).to_le_bytes());
        for c in &self.columns {
            let ty = match c.data_type {
                DataType::Bool => 0u8,
                DataType::Int => 1,
                DataType::Float => 2,
                DataType::Str => 3,
                DataType::Bytes => 4,
                DataType::Rect => 5,
            };
            out.push(ty);
            out.push(c.nullable as u8);
            out.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
            out.extend_from_slice(c.name.as_bytes());
        }
        out
    }

    /// Deserializes a schema produced by [`Schema::encode`].
    pub fn decode(buf: &[u8]) -> Result<Schema> {
        let corrupt = || DmxError::Corrupt("truncated schema".into());
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let end = pos.checked_add(n).ok_or_else(corrupt)?;
            let s = buf.get(*pos..end).ok_or_else(corrupt)?;
            *pos = end;
            Ok(s)
        };
        let n = u16::from_le_bytes(take(&mut pos, 2)?.try_into().map_err(|_| corrupt())?) as usize;
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let ty = take(&mut pos, 1)?[0];
            let nullable = take(&mut pos, 1)?[0] != 0;
            let name_len =
                u16::from_le_bytes(take(&mut pos, 2)?.try_into().map_err(|_| corrupt())?) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
                .map_err(|_| DmxError::Corrupt("schema column name not utf8".into()))?;
            let data_type = match ty {
                0 => DataType::Bool,
                1 => DataType::Int,
                2 => DataType::Float,
                3 => DataType::Str,
                4 => DataType::Bytes,
                5 => DataType::Rect,
                other => return Err(DmxError::Corrupt(format!("bad type tag {other}"))),
            };
            cols.push(ColumnDef {
                name,
                data_type,
                nullable,
            });
        }
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::not_null("name", DataType::Str),
            ColumnDef::new("salary", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_columns() {
        let err = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("a", DataType::Str),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = emp_schema();
        assert_eq!(s.field_id("NAME").unwrap(), 1);
        assert!(s.field_id("bogus").is_err());
    }

    #[test]
    fn validate_checks_arity_nulls_and_types() {
        let s = emp_schema();
        assert!(s
            .validate(&[Value::Int(1), Value::from("ann"), Value::Float(10.0)])
            .is_ok());
        // int widens into a float column
        assert!(s
            .validate(&[Value::Int(1), Value::from("ann"), Value::Int(10)])
            .is_ok());
        // wrong arity
        assert!(s.validate(&[Value::Int(1)]).is_err());
        // null into NOT NULL
        assert!(s
            .validate(&[Value::Null, Value::from("ann"), Value::Null])
            .is_err());
        // type mismatch
        assert!(s
            .validate(&[Value::Int(1), Value::Int(2), Value::Null])
            .is_err());
    }

    #[test]
    fn project_subsets() {
        let s = emp_schema();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.column(0).unwrap().name, "salary");
        assert_eq!(p.column(1).unwrap().name, "id");
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = emp_schema();
        let back = Schema::decode(&s.encode()).unwrap();
        assert_eq!(s, back);
        assert!(Schema::decode(&[1]).is_err());
    }
}
