//! Checked little-endian reads from byte buffers.
//!
//! Every on-disk structure in the system decodes fixed-width integers
//! from untrusted byte slices. These helpers return `None` instead of
//! panicking when the buffer is short, so decoders can surface a typed
//! `Corrupt` error; the panic-discipline gate (`cargo xtask verify`)
//! rejects the open-coded `buf[a..b].try_into().unwrap()` form.

/// A fixed-size array copied out of `b` at `off`, or `None` when the
/// buffer is too short.
pub fn array<const N: usize>(b: &[u8], off: usize) -> Option<[u8; N]> {
    b.get(off..off.checked_add(N)?)?.try_into().ok()
}

/// Little-endian `u16` at `off`.
pub fn le_u16(b: &[u8], off: usize) -> Option<u16> {
    array(b, off).map(u16::from_le_bytes)
}

/// Little-endian `u32` at `off`.
pub fn le_u32(b: &[u8], off: usize) -> Option<u32> {
    array(b, off).map(u32::from_le_bytes)
}

/// Little-endian `u64` at `off`.
pub fn le_u64(b: &[u8], off: usize) -> Option<u64> {
    array(b, off).map(u64::from_le_bytes)
}

/// Little-endian `i64` at `off`.
pub fn le_i64(b: &[u8], off: usize) -> Option<i64> {
    array(b, off).map(i64::from_le_bytes)
}

/// Little-endian `f64` at `off`.
pub fn le_f64(b: &[u8], off: usize) -> Option<f64> {
    array(b, off).map(f64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_bounds() {
        let b = 0x0102_0304_0506_0708u64.to_le_bytes();
        assert_eq!(le_u16(&b, 0), Some(0x0708));
        assert_eq!(le_u32(&b, 4), Some(0x0102_0304));
        assert_eq!(le_u64(&b, 0), Some(0x0102_0304_0506_0708));
        assert_eq!(le_i64(&b, 0), Some(0x0102_0304_0506_0708));
    }

    #[test]
    fn short_buffer_yields_none() {
        let b = [1u8, 2, 3];
        assert_eq!(le_u32(&b, 0), None);
        assert_eq!(le_u16(&b, 2), None);
        assert_eq!(le_u16(&b, usize::MAX), None, "offset overflow is caught");
    }
}
