//! Axis-aligned rectangles for spatial data.
//!
//! The paper motivates data management extensions with spatial database
//! applications using an R-tree access path (Guttman '84) that recognizes
//! the `ENCLOSES` predicate. [`Rect`] is the spatial value type the R-tree
//! attachment indexes.

/// A 2-D axis-aligned rectangle: `[xlo, xhi] × [ylo, yhi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub xlo: f64,
    pub ylo: f64,
    pub xhi: f64,
    pub yhi: f64,
}

impl Rect {
    /// Builds a rectangle, normalizing the corner order.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            xlo: x0.min(x1),
            ylo: y0.min(y1),
            xhi: x0.max(x1),
            yhi: y0.max(y1),
        }
    }

    /// A degenerate rectangle covering a single point.
    pub fn point(x: f64, y: f64) -> Self {
        Rect::new(x, y, x, y)
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        (self.xhi - self.xlo) * (self.yhi - self.ylo)
    }

    /// True when `self` fully contains `other` (the paper's `ENCLOSES`).
    pub fn encloses(&self, other: &Rect) -> bool {
        self.xlo <= other.xlo
            && self.xhi >= other.xhi
            && self.ylo <= other.ylo
            && self.yhi >= other.yhi
    }

    /// True when the rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xlo <= other.xhi
            && other.xlo <= self.xhi
            && self.ylo <= other.yhi
            && other.ylo <= self.yhi
    }

    /// Smallest rectangle containing both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xlo: self.xlo.min(other.xlo),
            ylo: self.ylo.min(other.ylo),
            xhi: self.xhi.max(other.xhi),
            yhi: self.yhi.max(other.yhi),
        }
    }

    /// Area increase needed for `self` to also cover `other`; the R-tree's
    /// insertion heuristic minimizes this enlargement.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Serializes to 32 bytes (4 × f64, little endian).
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        // bounds: literal ranges into a fixed [u8; 32].
        out[0..8].copy_from_slice(&self.xlo.to_le_bytes());
        out[8..16].copy_from_slice(&self.ylo.to_le_bytes());
        // bounds: literal ranges into a fixed [u8; 32].
        out[16..24].copy_from_slice(&self.xhi.to_le_bytes());
        out[24..32].copy_from_slice(&self.yhi.to_le_bytes());
        out
    }

    /// Deserializes from the [`Rect::to_bytes`] format.
    pub fn from_bytes(b: &[u8]) -> Option<Rect> {
        let f = |i: usize| crate::bytes::le_f64(b, i);
        Some(Rect {
            xlo: f(0)?,
            ylo: f(8)?,
            xhi: f(16)?,
            yhi: f(24)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalized() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(r.xlo, 1.0);
        assert_eq!(r.yhi, 6.0);
        assert_eq!(r.area(), 16.0);
    }

    #[test]
    fn encloses_is_reflexive_and_antisymmetric_on_proper_containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(outer.encloses(&outer));
        assert!(outer.encloses(&inner));
        assert!(!inner.encloses(&outer));
    }

    #[test]
    fn intersects_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        let edge = Rect::new(2.0, 0.0, 4.0, 2.0); // shares only the x=2 edge
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&edge));
    }

    #[test]
    fn union_and_enlargement() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert!(u.encloses(&a) && u.encloses(&b));
        assert_eq!(a.enlargement(&b), u.area() - a.area());
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn byte_roundtrip() {
        let r = Rect::new(-1.5, 2.25, 7.0, -3.0);
        let back = Rect::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(r, back);
        assert!(Rect::from_bytes(&[0u8; 8]).is_none());
    }
}
