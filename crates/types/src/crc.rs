//! CRC32 (IEEE 802.3 polynomial), std-only, table-driven.
//!
//! Used to checksum page images (stored in the page header) and encoded
//! log records (trailing four bytes of each frame) so that byte rot and
//! torn writes are detected on every read rather than silently propagated.
//! The table is built at compile time; no external crate is involved.

/// Reflected IEEE polynomial (the one used by zlib, Ethernet, PNG).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` from a previous call (start from
/// `0xFFFF_FFFF`, finish by xoring with `0xFFFF_FFFF`). Lets callers
/// checksum a page image while skipping the header field that stores the
/// checksum itself, without copying the page.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        // bounds: idx is masked to 0..=255 and TABLE has 256 entries
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 512];
        data[100] = 0x5A;
        let before = crc32(&data);
        data[100] ^= 0x01;
        assert_ne!(crc32(&data), before);
    }
}
