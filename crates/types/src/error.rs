//! The workspace-wide error type.
//!
//! Every layer of the system — storage methods, attachments, common
//! services, the query processor — reports failures through [`DmxError`].
//! A few variants carry architectural meaning: [`DmxError::Veto`] is how an
//! attachment rejects a relation modification (triggering the log-driven
//! partial rollback of the paper), and [`DmxError::Deadlock`] is raised by
//! the lock manager's system-wide deadlock detector against the chosen
//! victim.

use std::fmt;

use crate::ids::TxnId;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, DmxError>;

/// Errors produced anywhere in the data manager.
#[derive(Debug, Clone, PartialEq)]
pub enum DmxError {
    /// An attachment vetoed a relation modification. The dispatcher reacts
    /// by rolling the modification (and the already-executed attachments)
    /// back to the savepoint established at operation entry.
    Veto {
        /// Name of the vetoing attachment type.
        attachment: String,
        /// Human-readable reason, e.g. the violated constraint.
        reason: String,
    },
    /// A deferred integrity constraint failed at the "before prepare"
    /// transaction event; the whole transaction must abort.
    ConstraintViolation(String),
    /// The requested object (relation, attachment, record, key, …) does not
    /// exist.
    NotFound(String),
    /// A uniqueness rule was violated (duplicate key in a unique access
    /// path, duplicate relation name, …).
    Duplicate(String),
    /// Simulated I/O failure from the disk manager. This variant is
    /// *permanent*: retrying the same operation will fail the same way.
    Io(String),
    /// A *transient* I/O failure: the operation may succeed if retried.
    /// The buffer manager and `LogManager::force` retry these with a
    /// bounded deterministic backoff before promoting to [`DmxError::Io`].
    IoTransient(String),
    /// The buffer pool has no evictable frame (under the no-steal policy a
    /// transaction dirtying more pages than the pool holds must abort).
    BufferFull,
    /// This transaction was chosen as a deadlock victim.
    Deadlock { victim: TxnId },
    /// A lock request timed out.
    LockTimeout,
    /// The transaction was already aborted (e.g. by the deadlock detector)
    /// and cannot perform further work.
    TxnAborted(TxnId),
    /// The transaction handle is not in a state that allows the operation
    /// (e.g. commit after abort).
    TxnState(String),
    /// On-disk or in-log bytes failed validation.
    Corrupt(String),
    /// A relation's pages failed checksum verification even after retries;
    /// the relation is quarantined (unreadable, unwritable) until repaired,
    /// but every other relation stays fully available.
    RelationQuarantined {
        /// The quarantined relation.
        relation: crate::ids::RelationId,
        /// Why it was quarantined (e.g. the page that failed its CRC).
        reason: String,
    },
    /// The storage medium is full (ENOSPC on page allocation or log
    /// append). The statement aborts cleanly and the engine enters a
    /// sticky read-only degraded mode; reads keep working.
    OutOfSpace(String),
    /// The engine is in read-only degraded mode (entered after an
    /// out-of-space failure); modifications are rejected until the
    /// condition is cleared, reads proceed normally.
    ReadOnly(String),
    /// The repair pipeline exhausted its retry budget or classified the
    /// damage as unrecoverable: the relation stays quarantined in a
    /// terminal state and needs operator intervention.
    RepairImpossible {
        /// The permanently damaged relation.
        relation: crate::ids::RelationId,
        /// Why repair cannot proceed.
        reason: String,
    },
    /// A caller-supplied argument was invalid (bad attribute list, schema
    /// mismatch, unknown field, …).
    InvalidArg(String),
    /// The extension does not support the requested generic operation
    /// (e.g. update on the read-only publishing storage method).
    Unsupported(String),
    /// Mini-language parse error.
    Parse(String),
    /// Query planning failed (no viable access path, unknown column, …).
    Planning(String),
    /// Authorization failure from the uniform authorization facility.
    Unauthorized(String),
    /// Type error during expression evaluation.
    TypeMismatch(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl DmxError {
    /// True when the error aborts the entire transaction rather than just
    /// the current statement. Vetoes are statement-level (partial rollback);
    /// deadlocks and explicit aborts are transaction-level.
    pub fn is_txn_fatal(&self) -> bool {
        matches!(
            self,
            DmxError::Deadlock { .. }
                | DmxError::TxnAborted(_)
                | DmxError::ConstraintViolation(_)
                | DmxError::BufferFull
        )
    }

    /// True for the transient I/O variant, which callers may retry with a
    /// bounded backoff; [`DmxError::Io`] is permanent and must not be
    /// retried.
    pub fn is_transient_io(&self) -> bool {
        matches!(self, DmxError::IoTransient(_))
    }

    /// Shorthand constructor for veto errors.
    pub fn veto(attachment: impl Into<String>, reason: impl Into<String>) -> Self {
        DmxError::Veto {
            attachment: attachment.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DmxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmxError::Veto { attachment, reason } => {
                write!(
                    f,
                    "modification vetoed by attachment {attachment}: {reason}"
                )
            }
            DmxError::ConstraintViolation(m) => write!(f, "constraint violation: {m}"),
            DmxError::NotFound(m) => write!(f, "not found: {m}"),
            DmxError::Duplicate(m) => write!(f, "duplicate: {m}"),
            DmxError::Io(m) => write!(f, "i/o error: {m}"),
            DmxError::IoTransient(m) => write!(f, "transient i/o error (retryable): {m}"),
            DmxError::BufferFull => write!(f, "buffer pool exhausted (no-steal policy)"),
            DmxError::Deadlock { victim } => write!(f, "deadlock detected; victim {victim}"),
            DmxError::LockTimeout => write!(f, "lock wait timed out"),
            DmxError::TxnAborted(t) => write!(f, "transaction {t} is aborted"),
            DmxError::TxnState(m) => write!(f, "invalid transaction state: {m}"),
            DmxError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DmxError::RelationQuarantined { relation, reason } => {
                write!(f, "relation {relation} quarantined: {reason}")
            }
            DmxError::OutOfSpace(m) => write!(f, "out of space: {m}"),
            DmxError::ReadOnly(m) => write!(f, "engine is read-only (degraded): {m}"),
            DmxError::RepairImpossible { relation, reason } => {
                write!(f, "relation {relation} permanently damaged: {reason}")
            }
            DmxError::InvalidArg(m) => write!(f, "invalid argument: {m}"),
            DmxError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            DmxError::Parse(m) => write!(f, "parse error: {m}"),
            DmxError::Planning(m) => write!(f, "planning error: {m}"),
            DmxError::Unauthorized(m) => write!(f, "not authorized: {m}"),
            DmxError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DmxError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DmxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn veto_constructor_and_display() {
        let e = DmxError::veto("check", "salary must be positive");
        assert!(matches!(&e, DmxError::Veto { attachment, .. } if attachment == "check"));
        let msg = e.to_string();
        assert!(msg.contains("check"));
        assert!(msg.contains("salary must be positive"));
    }

    #[test]
    fn fatality_classification() {
        assert!(DmxError::Deadlock { victim: TxnId(7) }.is_txn_fatal());
        assert!(DmxError::ConstraintViolation("x".into()).is_txn_fatal());
        assert!(!DmxError::veto("a", "b").is_txn_fatal());
        assert!(!DmxError::NotFound("r".into()).is_txn_fatal());
    }

    #[test]
    fn transient_io_classification() {
        assert!(DmxError::IoTransient("glitch".into()).is_transient_io());
        assert!(!DmxError::Io("gone".into()).is_transient_io());
        assert!(!DmxError::Corrupt("rot".into()).is_transient_io());
    }

    #[test]
    fn display_covers_all_variants() {
        // Smoke-test Display on every variant so a formatting regression is
        // caught here rather than in a log line.
        let variants: Vec<DmxError> = vec![
            DmxError::veto("a", "b"),
            DmxError::ConstraintViolation("c".into()),
            DmxError::NotFound("n".into()),
            DmxError::Duplicate("d".into()),
            DmxError::Io("i".into()),
            DmxError::IoTransient("t".into()),
            DmxError::BufferFull,
            DmxError::Deadlock { victim: TxnId(1) },
            DmxError::LockTimeout,
            DmxError::TxnAborted(TxnId(2)),
            DmxError::TxnState("s".into()),
            DmxError::Corrupt("c".into()),
            DmxError::RelationQuarantined {
                relation: crate::ids::RelationId(1),
                reason: "q".into(),
            },
            DmxError::OutOfSpace("full".into()),
            DmxError::ReadOnly("degraded".into()),
            DmxError::RepairImpossible {
                relation: crate::ids::RelationId(2),
                reason: "terminal".into(),
            },
            DmxError::InvalidArg("a".into()),
            DmxError::Unsupported("u".into()),
            DmxError::Parse("p".into()),
            DmxError::Planning("q".into()),
            DmxError::Unauthorized("z".into()),
            DmxError::TypeMismatch("t".into()),
            DmxError::Internal("x".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
