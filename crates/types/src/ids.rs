//! Identifier newtypes.
//!
//! The paper makes extension identifiers "small integers that serve as
//! indexes into the vectors of procedures": [`SmTypeId`] and [`AttTypeId`]
//! are exactly those indexes. The remaining ids identify relations, files,
//! pages, transactions, log sequence numbers and open scans.

use std::fmt;

macro_rules! id_u32 {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

macro_rules! id_u64 {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_u32!(
    /// Identifies a relation instance in the catalog.
    RelationId
);
id_u32!(
    /// Identifies a simulated disk file.
    FileId
);
id_u64!(
    /// Identifies a transaction.
    TxnId
);
id_u64!(
    /// Identifies an open key-sequential access (a scan).
    ScanId
);

/// A log sequence number. `Lsn::NULL` marks "no LSN" (e.g. a page never
/// touched by logging, or the end of an undo chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN, ordered before every real LSN.
    pub const NULL: Lsn = Lsn(0);

    /// True when this is the null LSN.
    pub fn is_null(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

/// Addresses a page within a simulated disk file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number inside the file.
    pub page_no: u32,
}

impl PageId {
    /// Convenience constructor.
    pub fn new(file: FileId, page_no: u32) -> Self {
        PageId { file, page_no }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({}, {})", self.file.0, self.page_no)
    }
}

/// Storage-method type identifier: the index into the storage-method
/// procedure vectors. The paper assigns id 1 to the base temporary storage
/// method; we preserve that convention in `dmx-storage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmTypeId(pub u8);

impl fmt::Display for SmTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sm({})", self.0)
    }
}

/// Attachment type identifier: the index into the attachment procedure
/// vectors and the field number of this attachment type's descriptor inside
/// the composite relation descriptor. The paper notes this encoding limits
/// the number of attachment types to "a few dozen"; we enforce a cap in the
/// registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttTypeId(pub u8);

impl fmt::Display for AttTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Att({})", self.0)
    }
}

/// Identifies one attachment *instance* among the instances of a given type
/// on a given relation (e.g. "access via B-tree number 3").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttInstanceId(pub u16);

impl fmt::Display for AttInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Field (column) index within a schema.
pub type FieldId = u16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_null_ordering() {
        assert!(Lsn::NULL.is_null());
        assert!(Lsn::NULL < Lsn(1));
        assert!(!Lsn(1).is_null());
    }

    #[test]
    fn page_id_ordering_groups_by_file() {
        let a = PageId::new(FileId(1), 9);
        let b = PageId::new(FileId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn ids_display() {
        assert_eq!(RelationId(3).to_string(), "RelationId(3)");
        assert_eq!(SmTypeId(1).to_string(), "Sm(1)");
        assert_eq!(AttTypeId(4).to_string(), "Att(4)");
        assert_eq!(PageId::new(FileId(2), 7).to_string(), "Page(2, 7)");
    }
}
