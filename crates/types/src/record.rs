//! The record wire format.
//!
//! Records are stored on pages (and in access-path leaves) in a compact
//! self-describing byte format. [`RecordRef`] reads that format *in place*:
//! the common-services predicate evaluator uses it to test filter
//! predicates against field values while they are still in the extension's
//! buffer pool, without copying the record out — a property the paper calls
//! out explicitly.

use crate::error::{DmxError, Result};
use crate::ids::FieldId;
use crate::rect::Rect;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_RECT: u8 = 7;

/// An owned record: a vector of field values plus (de)serialization.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    pub values: Vec<Value>,
}

impl Record {
    /// Builds a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Serializes to the on-page format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.values.len() * 9);
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            encode_value(v, &mut out);
        }
        out
    }

    /// Deserializes every field of an encoded record.
    pub fn decode(buf: &[u8]) -> Result<Record> {
        let r = RecordRef::new(buf)?;
        let mut values = Vec::with_capacity(r.field_count() as usize);
        for i in 0..r.field_count() {
            values.push(r.field(i)?);
        }
        Ok(Record { values })
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record { values }
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Rect(r) => {
            out.push(TAG_RECT);
            out.extend_from_slice(&r.to_bytes());
        }
    }
}

/// A borrowed view over an encoded record that decodes fields lazily.
///
/// `field(i)` walks the encoding, skipping earlier fields without
/// materializing them; `fields(..)` extracts a projection in a single pass.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a> {
    buf: &'a [u8],
    field_count: u16,
}

impl<'a> RecordRef<'a> {
    /// Wraps an encoded record, validating only the header.
    pub fn new(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < 2 {
            return Err(DmxError::Corrupt("record shorter than header".into()));
        }
        let field_count = u16::from_le_bytes([buf[0], buf[1]]);
        Ok(RecordRef { buf, field_count })
    }

    /// Number of fields the record claims to carry.
    pub fn field_count(&self) -> u16 {
        self.field_count
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// Skips over the value starting at `pos`, returning the offset just
    /// past it.
    fn skip(&self, pos: usize) -> Result<usize> {
        let tag = *self
            .buf
            .get(pos)
            .ok_or_else(|| DmxError::Corrupt("record truncated at tag".into()))?;
        let next = match tag {
            TAG_NULL | TAG_BOOL_FALSE | TAG_BOOL_TRUE => pos + 1,
            TAG_INT | TAG_FLOAT => pos + 9,
            TAG_STR | TAG_BYTES => {
                let len = crate::bytes::le_u32(self.buf, pos + 1)
                    .ok_or_else(|| DmxError::Corrupt("record truncated at length".into()))?
                    as usize;
                pos + 5 + len
            }
            TAG_RECT => pos + 33,
            other => return Err(DmxError::Corrupt(format!("bad value tag {other}"))),
        };
        if next > self.buf.len() {
            return Err(DmxError::Corrupt("record truncated in payload".into()));
        }
        Ok(next)
    }

    fn decode_at(&self, pos: usize) -> Result<(Value, usize)> {
        let corrupt = || DmxError::Corrupt("record truncated in payload".into());
        let tag = self.buf[pos];
        let next = self.skip(pos)?;
        // `skip` bounds-checked `next`, so the reads below only fail on a
        // buffer raced out from under us; they still go through checked
        // accessors rather than panicking.
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(crate::bytes::le_i64(self.buf, pos + 1).ok_or_else(corrupt)?),
            TAG_FLOAT => Value::Float(crate::bytes::le_f64(self.buf, pos + 1).ok_or_else(corrupt)?),
            TAG_STR => {
                let raw = self.buf.get(pos + 5..next).ok_or_else(corrupt)?;
                let s = std::str::from_utf8(raw)
                    .map_err(|_| DmxError::Corrupt("string field not utf8".into()))?;
                Value::Str(s.to_string())
            }
            TAG_BYTES => Value::Bytes(self.buf.get(pos + 5..next).ok_or_else(corrupt)?.to_vec()),
            TAG_RECT => Value::Rect(
                Rect::from_bytes(self.buf.get(pos + 1..next).ok_or_else(corrupt)?)
                    .ok_or_else(|| DmxError::Corrupt("bad rect field".into()))?,
            ),
            _ => unreachable!("skip validated the tag"),
        };
        Ok((v, next))
    }

    /// Decodes a single field by index, skipping the preceding fields.
    pub fn field(&self, id: FieldId) -> Result<Value> {
        if id >= self.field_count {
            return Err(DmxError::InvalidArg(format!(
                "field {id} out of range (record has {})",
                self.field_count
            )));
        }
        let mut pos = 2usize;
        for _ in 0..id {
            pos = self.skip(pos)?;
        }
        Ok(self.decode_at(pos)?.0)
    }

    /// Decodes a projection of fields in one forward pass. The requested
    /// ids may be in any order and may repeat; output order matches the
    /// request.
    pub fn fields(&self, ids: &[FieldId]) -> Result<Vec<Value>> {
        // Single pass up to the largest requested field; cache values at the
        // requested positions.
        let mut wanted: Vec<FieldId> = ids.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let mut found: Vec<(FieldId, Value)> = Vec::with_capacity(wanted.len());
        let mut pos = 2usize;
        let mut next_wanted = wanted.iter().copied().peekable();
        for fid in 0..self.field_count {
            match next_wanted.peek() {
                None => break,
                Some(&w) if w == fid => {
                    let (v, np) = self.decode_at(pos)?;
                    found.push((fid, v));
                    pos = np;
                    next_wanted.next();
                }
                _ => pos = self.skip(pos)?,
            }
        }
        if let Some(&w) = next_wanted.peek() {
            return Err(DmxError::InvalidArg(format!(
                "field {w} out of range (record has {})",
                self.field_count
            )));
        }
        ids.iter()
            .map(|id| {
                found
                    .iter()
                    .find(|(f, _)| f == id)
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| DmxError::Internal("projection bookkeeping".into()))
            })
            .collect()
    }

    /// Fully decodes the record.
    pub fn to_record(&self) -> Result<Record> {
        Record::decode(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record::new(vec![
            Value::Int(42),
            Value::from("alice"),
            Value::Null,
            Value::Float(-2.5),
            Value::Bool(true),
            Value::Bytes(vec![1, 2, 3]),
            Value::Rect(Rect::new(0.0, 0.0, 1.0, 1.0)),
        ])
    }

    #[test]
    fn roundtrip_all_types() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(Record::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn lazy_single_field() {
        let r = sample();
        let bytes = r.encode();
        let rr = RecordRef::new(&bytes).unwrap();
        assert_eq!(rr.field_count(), 7);
        assert_eq!(rr.field(0).unwrap(), Value::Int(42));
        assert_eq!(rr.field(4).unwrap(), Value::Bool(true));
        assert!(rr.field(7).is_err());
    }

    #[test]
    fn projection_any_order_with_repeats() {
        let r = sample();
        let bytes = r.encode();
        let rr = RecordRef::new(&bytes).unwrap();
        let got = rr.fields(&[4, 0, 0, 1]).unwrap();
        assert_eq!(
            got,
            vec![
                Value::Bool(true),
                Value::Int(42),
                Value::Int(42),
                Value::from("alice")
            ]
        );
        assert!(rr.fields(&[9]).is_err());
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let bytes = sample().encode();
        for cut in [0, 1, 2, 3, 5, bytes.len() - 1] {
            let slice = &bytes[..cut];
            match RecordRef::new(slice) {
                Err(_) => {}
                Ok(rr) => {
                    // Reading the last field forces a full walk; it must
                    // error, never panic.
                    assert!(rr.field(rr.field_count().saturating_sub(1)).is_err());
                }
            }
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut bytes = Record::new(vec![Value::Int(1)]).encode();
        bytes[2] = 99; // clobber the tag
        let rr = RecordRef::new(&bytes).unwrap();
        assert!(matches!(rr.field(0), Err(DmxError::Corrupt(_))));
    }

    #[test]
    fn empty_record() {
        let r = Record::new(vec![]);
        let bytes = r.encode();
        assert_eq!(bytes.len(), 2);
        assert_eq!(Record::decode(&bytes).unwrap(), r);
    }
}
