//! PR7 self-healing scenarios: online-scrub overhead against the pr3
//! DML mix, and the repair pipeline end to end. The seeded runs form
//! the `BENCH_pr7.json` baseline.
//!
//! Same determinism contract as [`crate::pr3`]: nothing inside a
//! workload reads a clock, so two runs with the same seed and scale
//! produce byte-identical metric snapshots. "Concurrent" scrubbing is a
//! deterministic interleave — a full `CHECK TABLE` pass woven between
//! every batch of DML statements — so the overhead a baseline diff
//! shows is the scrub's page walking and cross-checking, not scheduler
//! noise.

use std::fmt::Write as _;
use std::time::Instant;

use dmx_core::{Database, DatabaseConfig, DatabaseEnv};
use dmx_query::SqlExt;
use dmx_types::testrng::TestRng;
use dmx_types::{FileId, PageId};

use crate::pr3::{Scale, Scenario, ScenarioOutcome, WorkloadResult};
use crate::registry;

/// The PR7 scenario suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "dml_mix_no_scrub",
            claim: "the pr3-shaped DML mix alone — the scrub-overhead baseline",
            run: dml_mix_no_scrub,
        },
        Scenario {
            name: "scrub_concurrent_dml",
            claim: "online CHECK TABLE interleaved with the same DML mix",
            run: scrub_concurrent_dml,
        },
        Scenario {
            name: "repair_pipeline",
            claim: "quarantine -> rebuild-from-base -> verified healthy, end to end",
            run: repair_pipeline,
        },
    ]
}

/// The shared seeded mix (the pr3 `mixed_dml` shape): inserts, updates
/// and deletes against an indexed table. When `scrub_every` is nonzero,
/// a full online scrub pass runs after every that-many statements.
fn dml_mix(scale: &Scale, seed: u64, scrub_every: usize) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    crate::load_emp(
        &db,
        "t",
        scale.rows / 4,
        &["CREATE UNIQUE INDEX t_pk ON {t} (id)"],
    )
    .expect("load");
    let mut rng = TestRng::new(seed);
    let mut next_id = (scale.rows / 4) as i64;
    let mut ops = 0u64;
    let mut scrubs = 0u64;
    for i in 0..scale.dml_ops {
        let roll = rng.below(100);
        if roll < 50 {
            let id = next_id;
            next_id += 1;
            db.execute_sql(&format!(
                "INSERT INTO t VALUES ({id}, 'e{id}', {}, 0.0)",
                id % 10
            ))
            .expect("insert");
        } else if roll < 80 {
            let id = rng.range_i64(0, next_id);
            db.execute_sql(&format!(
                "UPDATE t SET dept = {} WHERE id = {id}",
                roll % 10
            ))
            .expect("update");
        } else {
            let id = rng.range_i64(0, next_id);
            db.execute_sql(&format!("DELETE FROM t WHERE id = {id}"))
                .expect("delete");
        }
        ops += 1;
        if scrub_every != 0 && i % scrub_every == scrub_every - 1 {
            let r = db.execute_sql("CHECK TABLE t").expect("online scrub");
            assert_eq!(
                r.rows[0][2],
                dmx_types::Value::from("healthy"),
                "scrub must find a healthy table mid-mix"
            );
            scrubs += 1;
        }
    }
    if scrub_every != 0 {
        assert!(scrubs > 0, "the mix must actually interleave scrub passes");
    }
    WorkloadResult {
        ops,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 1: the mix alone — what the overhead is measured against.
fn dml_mix_no_scrub(scale: &Scale, seed: u64) -> WorkloadResult {
    dml_mix(scale, seed, 0)
}

/// Scenario 2: the same mix with a full online scrub pass every 32
/// statements; the elapsed-time delta against scenario 1 is the scrub
/// overhead the baseline documents.
fn scrub_concurrent_dml(scale: &Scale, seed: u64) -> WorkloadResult {
    dml_mix(scale, seed, 32)
}

/// Scenario 3: silent index rot, proactive detection, automatic repair.
/// `ops` counts the records the healed relation serves again.
fn repair_pipeline(scale: &Scale, seed: u64) -> WorkloadResult {
    let env = DatabaseEnv::fresh();
    let db = Database::open(env.clone(), DatabaseConfig::default(), registry()).expect("open");
    let rows = (scale.rows / 8).max(16);
    crate::load_emp(
        &db,
        "victim",
        rows,
        &["CREATE UNIQUE INDEX victim_pk ON {t} (id)"],
    )
    .expect("load");
    let _ = seed; // the damage point is fixed; determinism is the point
    drop(db);

    // Rot one byte of the index (1 catalog, 2 heap, 3 index).
    let pid = PageId::new(FileId(3), 0);
    let mut page = dmx_page::Page::new();
    env.disk.read_page(pid, &mut page).expect("read page");
    page.raw_mut()[100] ^= 0x40;
    env.disk.write_page(pid, &page).expect("write page");

    let db = Database::open(env, DatabaseConfig::default(), registry()).expect("reopen");
    let check = db.execute_sql("CHECK TABLE victim").expect("scrub");
    assert_eq!(check.rows[0][2], dmx_types::Value::from("quarantined"));
    let repair = db.execute_sql("REPAIR TABLE victim").expect("repair");
    assert_eq!(repair.rows[0][2], dmx_types::Value::from("healthy"));
    let served = db
        .query_sql("SELECT id FROM victim")
        .expect("healed reads")
        .len() as u64;
    assert_eq!(served as usize, rows, "rebuild must lose nothing");
    WorkloadResult {
        ops: served,
        metrics: db.metrics_snapshot(),
    }
}

/// Runs every scenario once, timing the deterministic region.
pub fn run_timed(scale: &Scale, seed: u64) -> Vec<ScenarioOutcome> {
    scenarios()
        .into_iter()
        .map(|s| {
            let start = Instant::now();
            let r = (s.run)(scale, seed);
            let elapsed = start.elapsed();
            ScenarioOutcome {
                name: s.name,
                ops: r.ops,
                elapsed,
                metrics: r.metrics,
            }
        })
        .collect()
}

/// Renders the outcomes as the `BENCH_pr7.json` document.
pub fn render_json(outcomes: &[ScenarioOutcome], seed: u64, scale: &Scale) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"pr7-self-healing-storage\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"rows\": {}, \"lookups\": {}, \"scans\": {}, \"dml_ops\": {}}},",
        scale.rows, scale.lookups, scale.scans, scale.dml_ops
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let secs = o.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { o.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"metrics\": {}}}",
            o.name,
            o.ops,
            secs * 1e3,
            per_sec,
            o.metrics.to_json()
        );
        s.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_deterministic() {
        let scale = Scale::smoke();
        for s in scenarios() {
            let a = (s.run)(&scale, crate::pr3::DEFAULT_SEED);
            let b = (s.run)(&scale, crate::pr3::DEFAULT_SEED);
            assert_eq!(a.ops, b.ops, "{}: op count drifted", s.name);
            assert_eq!(a.metrics, b.metrics, "{}: snapshot drifted", s.name);
        }
    }
}
