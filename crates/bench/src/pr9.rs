//! PR9 MVCC scenarios: a read-mostly workload run twice — once with the
//! pre-MVCC read path (every scanned record S-locked) and once against
//! the transaction's snapshot (zero record locks). The seeded runs form
//! the `BENCH_pr9.json` baseline.
//!
//! The headline comparison is `lock.acquires` between the two
//! scenarios: the workloads are identical (same seed, same scans, same
//! sprinkled updates), so the delta is purely the read-path visibility
//! mechanism. `scripts/check.sh` ratchets the collapse at >= 10x and
//! asserts the snapshot run actually exercised the version store
//! (`mvcc.snapshot_scans` > 0).
//!
//! Determinism contract: both scenarios are single-threaded and fully
//! seed-driven, so their metric snapshots reproduce byte-identically —
//! [`is_deterministic`] is `true` for the whole suite.

use std::fmt::Write as _;
use std::time::Instant;

use dmx_core::{AccessPath, AccessQuery};
use dmx_query::{Session, SqlExt};
use dmx_types::testrng::TestRng;
use dmx_types::{Record, Value};

use crate::pr3::{Scale, Scenario, ScenarioOutcome, WorkloadResult};

/// The PR9 scenario suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "read_mostly_locking",
            claim: "full-table scans S-lock every returned record (pre-MVCC path)",
            run: |s, seed| read_mostly(s, seed, false),
        },
        Scenario {
            name: "read_mostly_snapshot",
            claim: "the same scans against the snapshot: zero record locks",
            run: |s, seed| read_mostly(s, seed, true),
        },
    ]
}

/// Both scenarios are single-threaded and seed-driven.
pub fn is_deterministic(_name: &str) -> bool {
    true
}

/// The read-mostly workload: `scale.scans` full-table scans over
/// `scale.rows` rows with a ~5 % sprinkle of single-row updates between
/// them (read-*mostly*, not read-only — the snapshot path must coexist
/// with writers, not assume their absence). `snapshot` selects the read
/// path; everything else is identical.
fn read_mostly(scale: &Scale, seed: u64, snapshot: bool) -> WorkloadResult {
    let db = crate::open_db();
    db.execute_sql("CREATE TABLE r (id INT NOT NULL, v INT NOT NULL) USING btree WITH (key=id)")
        .expect("create table");
    let rd = db.catalog().get_by_name("r").expect("descriptor");
    let rows = scale.rows.max(64);
    db.with_txn(|txn| {
        for i in 0..rows {
            db.insert(
                txn,
                rd.id,
                Record::new(vec![Value::Int(i as i64), Value::Int((i * 7) as i64)]),
            )?;
        }
        Ok(())
    })
    .expect("load");
    let mut rng = TestRng::new(seed);
    // The update side goes through a Session so the plan cache serves
    // the repeated statement shape, as a real read-mostly client would.
    let sess = Session::new(db.clone());
    let scans = scale.scans.max(8);
    let write_every = (scans / (scans / 20).max(1)).max(1);
    let mut scanned_rows = 0u64;
    let mut writes = 0u64;
    let mut scan_locks = 0u64;
    for s in 0..scans {
        let before = db.metrics_snapshot().counter("lock.acquires");
        db.with_txn(|txn| {
            let prev = txn.set_snapshot_reads(snapshot);
            let scan = db.open_scan(
                txn,
                rd.id,
                AccessPath::StorageMethod,
                AccessQuery::All,
                None,
                None,
            )?;
            while db.scan_next(txn, scan)?.is_some() {
                scanned_rows += 1;
            }
            txn.set_snapshot_reads(prev);
            Ok(())
        })
        .expect("scan txn");
        scan_locks += db.metrics_snapshot().counter("lock.acquires") - before;
        if s % write_every == 0 {
            let id = rng.below(rows as u64) as i64;
            sess.execute(&format!("UPDATE r SET v = v + 1 WHERE id = {id}"))
                .expect("update");
            // The client's follow-up dashboard query: constant SQL text,
            // so the plan cache serves it after the first compile. Runs
            // outside the measured scan window in both scenarios.
            sess.execute("SELECT COUNT(*) FROM r").expect("count");
            writes += 1;
        }
    }
    // Publish the scan-phase lock traffic as its own counter so the
    // baseline JSON (and the check.sh ratchet) can compare the scan
    // paths directly, without the load/update phases' lock noise.
    db.metrics()
        .counter("bench.scan_lock_acquires")
        .add(scan_locks);
    let metrics = db.metrics_snapshot();
    assert_eq!(
        scanned_rows,
        (scans * rows) as u64,
        "every scan must see every row"
    );
    if snapshot {
        assert!(
            metrics.counter("mvcc.snapshot_scans") >= scans as u64,
            "snapshot mode must route scans through the version store"
        );
    }
    WorkloadResult {
        ops: scans as u64 + writes,
        metrics,
    }
}

/// Runs every scenario once, timing the deterministic region.
pub fn run_timed(scale: &Scale, seed: u64) -> Vec<ScenarioOutcome> {
    scenarios()
        .into_iter()
        .map(|s| {
            let start = Instant::now();
            let r = (s.run)(scale, seed);
            let elapsed = start.elapsed();
            ScenarioOutcome {
                name: s.name,
                ops: r.ops,
                elapsed,
                metrics: r.metrics,
            }
        })
        .collect()
}

/// Renders the outcomes as the `BENCH_pr9.json` document.
pub fn render_json(outcomes: &[ScenarioOutcome], seed: u64, scale: &Scale) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"pr9-mvcc-snapshot-reads\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"rows\": {}, \"lookups\": {}, \"scans\": {}, \"dml_ops\": {}}},",
        scale.rows, scale.lookups, scale.scans, scale.dml_ops
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let secs = o.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { o.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"metrics\": {}}}",
            o.name,
            o.ops,
            secs * 1e3,
            per_sec,
            o.metrics.to_json()
        );
        s.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr3::DEFAULT_SEED;

    #[test]
    fn smoke_scale_scenarios_reproduce_and_locks_collapse() {
        let scale = Scale::smoke();
        let mut acquires = std::collections::HashMap::new();
        for s in scenarios() {
            let a = (s.run)(&scale, DEFAULT_SEED);
            let b = (s.run)(&scale, DEFAULT_SEED);
            assert_eq!(a.ops, b.ops, "{}: op count drifted", s.name);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: same seed, different snapshot",
                s.name
            );
            acquires.insert(s.name, a.metrics.counter("bench.scan_lock_acquires"));
        }
        let locking = acquires["read_mostly_locking"];
        let snapshot = acquires["read_mostly_snapshot"];
        assert!(
            snapshot * 10 <= locking,
            "snapshot scans must collapse lock traffic >= 10x \
             (locking {locking} vs snapshot {snapshot})"
        );
    }
}
