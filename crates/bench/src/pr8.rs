//! PR8 recovery-architecture scenarios: the cost of commit under
//! redo/undo logging with a steal/no-force buffer pool, and the
//! effectiveness of group commit. The seeded runs form the
//! `BENCH_pr8.json` baseline.
//!
//! The headline comparison is against `BENCH_pr3.json`: the bulk-insert
//! and DML-mix scenarios here are *the same workloads* (the pr3 runner
//! functions are invoked by name), so any throughput delta is the
//! recovery-policy change — commit forcing only the log instead of
//! flushing every dirty page under every tree latch. `scripts/check.sh`
//! ratchets `bulk_insert_btree` at >= 2x the pr3 baseline and asserts
//! commit-time page flushing is gone (`pool.flushes` stays a small
//! DDL-bootstrap constant instead of scaling with the row count).
//!
//! Determinism contract: the single-threaded scenarios inherit pr3's
//! byte-identical-snapshot guarantee. `concurrent_committers` is the
//! exception — which force call carries which commit record depends on
//! thread interleaving — so smoke mode checks its invariants (all
//! transactions committed, fewer forces than commits) instead of
//! snapshot equality. [`is_deterministic`] encodes the split.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dmx_core::Database;
use dmx_query::SqlExt;
use dmx_types::testrng::TestRng;
use dmx_types::{Record, Value};

use crate::pr3::{Scale, Scenario, ScenarioOutcome, WorkloadResult};
use crate::registry;

/// The PR8 scenario suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "bulk_insert_heap",
            claim: "pr3 bulk heap load under no-force commit (log force only)",
            run: |s, seed| rerun_pr3("bulk_insert_heap", s, seed),
        },
        Scenario {
            name: "bulk_insert_btree",
            claim: "pr3 bulk b-tree load under no-force commit — the >=2x ratchet",
            run: |s, seed| rerun_pr3("bulk_insert_btree", s, seed),
        },
        Scenario {
            name: "mixed_dml_constraints",
            claim: "pr3 constraint-checked DML mix under no-force commit",
            run: |s, seed| rerun_pr3("mixed_dml_constraints", s, seed),
        },
        Scenario {
            name: "concurrent_committers",
            claim: "group commit: concurrent committers share log forces",
            run: concurrent_committers,
        },
    ]
}

/// True when a scenario's metric snapshot is a pure function of the
/// seed. `concurrent_committers` genuinely races threads, so its
/// force/batch split varies run to run by design.
pub fn is_deterministic(name: &str) -> bool {
    name != "concurrent_committers"
}

/// Runs a pr3 scenario by name so pr8 measures the identical workload,
/// then asserts the no-force property its snapshot must now exhibit:
/// page write-back no longer scales with the commit count.
fn rerun_pr3(name: &'static str, scale: &Scale, seed: u64) -> WorkloadResult {
    let s = crate::pr3::scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .expect("pr3 scenario");
    let r = (s.run)(scale, seed);
    let flushes = r.metrics.counter("pool.flushes");
    let commits = r.metrics.counter("txn.commits");
    assert!(
        flushes <= 16,
        "{name}: {flushes} page flushes across {commits} commits — \
         commit is flushing pages again (no-force regression)"
    );
    r
}

/// Threads per committer pool and transactions per thread. Constant
/// rather than scale-derived: the point is overlap, not volume.
const COMMITTERS: usize = 8;
const TXNS_PER_COMMITTER: usize = 40;

/// Group commit under real concurrency: every thread runs its own
/// serial stream of small transactions against a shared table. With
/// commit forcing only the log, concurrent commit points pile onto the
/// flush lock and the winner's force carries every record appended so
/// far — so the force count must come out *below* the commit count
/// (strictly, or group commit did nothing), with the batch sizes
/// recorded in the `wal.force_batch` histogram.
fn concurrent_committers(_scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    db.execute_sql(
        "CREATE TABLE t (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT)",
    )
    .expect("create table");
    let rd = db.catalog().get_by_name("t").expect("descriptor");
    let forces_before = db.metrics_snapshot().counter("wal.forces");
    std::thread::scope(|scope| {
        for worker in 0..COMMITTERS {
            let db: Arc<Database> = db.clone();
            let rd = rd.clone();
            scope.spawn(move || {
                let mut rng = TestRng::new(seed ^ worker as u64);
                for i in 0..TXNS_PER_COMMITTER {
                    let id = (worker * TXNS_PER_COMMITTER + i) as i64;
                    db.with_txn(|txn| {
                        db.insert(
                            txn,
                            rd.id,
                            Record::new(vec![
                                Value::Int(id),
                                Value::Str(format!("w{worker}_{i}")),
                                Value::Int(rng.range_i64(0, 10)),
                                Value::Float(1000.0 + rng.below(100) as f64),
                            ]),
                        )
                    })
                    .expect("commit");
                }
            });
        }
    });
    let metrics = db.metrics_snapshot();
    let commits = metrics.counter("txn.commits");
    let forces = metrics.counter("wal.forces") - forces_before;
    assert_eq!(
        commits as usize,
        COMMITTERS * TXNS_PER_COMMITTER + 1, // +1: the CREATE TABLE
        "every transaction must commit"
    );
    assert!(
        forces < commits,
        "{forces} forces for {commits} commits: group commit batched nothing"
    );
    WorkloadResult {
        ops: (COMMITTERS * TXNS_PER_COMMITTER) as u64,
        metrics,
    }
}

/// Runs every scenario once, timing the deterministic region.
pub fn run_timed(scale: &Scale, seed: u64) -> Vec<ScenarioOutcome> {
    scenarios()
        .into_iter()
        .map(|s| {
            let start = Instant::now();
            let r = (s.run)(scale, seed);
            let elapsed = start.elapsed();
            ScenarioOutcome {
                name: s.name,
                ops: r.ops,
                elapsed,
                metrics: r.metrics,
            }
        })
        .collect()
}

/// Renders the outcomes as the `BENCH_pr8.json` document.
pub fn render_json(outcomes: &[ScenarioOutcome], seed: u64, scale: &Scale) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"pr8-recovery-architecture\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"rows\": {}, \"lookups\": {}, \"scans\": {}, \"dml_ops\": {}}},",
        scale.rows, scale.lookups, scale.scans, scale.dml_ops
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let secs = o.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { o.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"metrics\": {}}}",
            o.name,
            o.ops,
            secs * 1e3,
            per_sec,
            o.metrics.to_json()
        );
        s.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr3::DEFAULT_SEED;

    #[test]
    fn smoke_scale_deterministic_scenarios_reproduce() {
        let scale = Scale::smoke();
        for s in scenarios() {
            let a = (s.run)(&scale, DEFAULT_SEED);
            if !is_deterministic(s.name) {
                assert!(a.ops > 0);
                continue;
            }
            let b = (s.run)(&scale, DEFAULT_SEED);
            assert_eq!(a.ops, b.ops, "{}: op count drifted", s.name);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: same seed, different snapshot",
                s.name
            );
        }
    }
}
