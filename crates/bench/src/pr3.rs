//! PR3 observability scenarios: seeded, deterministic workloads whose
//! metric snapshots are the bench baseline (`BENCH_pr3.json`).
//!
//! Each scenario builds its own database, drives a workload derived
//! entirely from a [`TestRng`] seed, and returns the operation count plus
//! the database's [`MetricsSnapshot`]. Nothing inside a workload reads a
//! clock: two runs with the same seed and scale produce byte-identical
//! snapshots (the property suite and `--smoke` mode both assert this).
//! Wall-clock timing happens only in [`run_timed`], outside the
//! deterministic region, and is reported next to — never inside — the
//! snapshot.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dmx_core::{Database, DatabaseConfig, DatabaseEnv};
use dmx_query::{Session, SqlExt};
use dmx_types::testrng::TestRng;
use dmx_types::{MetricsSnapshot, Record, Value};

use crate::registry;

/// The default seed for the shipped baseline.
pub const DEFAULT_SEED: u64 = 0xD31A_BA5E;

/// Workload sizes. `smoke` keeps `scripts/check.sh` fast; `full` is the
/// shipped `BENCH_pr3.json` baseline.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub rows: usize,
    pub lookups: usize,
    pub scans: usize,
    pub dml_ops: usize,
}

impl Scale {
    pub fn full() -> Scale {
        Scale {
            rows: 20_000,
            lookups: 4_000,
            scans: 40,
            dml_ops: 4_000,
        }
    }

    pub fn smoke() -> Scale {
        Scale {
            rows: 400,
            lookups: 100,
            scans: 6,
            dml_ops: 120,
        }
    }
}

/// What a scenario's deterministic region produces.
pub struct WorkloadResult {
    pub ops: u64,
    pub metrics: MetricsSnapshot,
}

/// A named seeded scenario.
pub struct Scenario {
    pub name: &'static str,
    pub claim: &'static str,
    pub run: fn(&Scale, u64) -> WorkloadResult,
}

/// A scenario outcome with its (non-deterministic) wall-clock timing.
pub struct ScenarioOutcome {
    pub name: &'static str,
    pub ops: u64,
    pub elapsed: Duration,
    pub metrics: MetricsSnapshot,
}

/// The PR3 scenario suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "bulk_insert_heap",
            claim: "bulk load into the heap storage method",
            run: |s, seed| bulk_insert(s, seed, false),
        },
        Scenario {
            name: "bulk_insert_btree",
            claim: "bulk load into the b-tree storage method (shuffled keys)",
            run: |s, seed| bulk_insert(s, seed, true),
        },
        Scenario {
            name: "point_lookup_index",
            claim: "point lookups through a unique index attachment",
            run: point_lookups,
        },
        Scenario {
            name: "scan_predicate_pushdown",
            claim: "full scans with the predicate evaluated in the storage method",
            run: scan_predicate,
        },
        Scenario {
            name: "mixed_dml_constraints",
            claim: "insert/update/delete mix under referential-integrity attachments",
            run: mixed_dml,
        },
        Scenario {
            name: "recovery_replay",
            claim: "restart recovery replays committed work and undoes the loser",
            run: recovery_replay,
        },
    ]
}

fn emp_record(rng: &mut TestRng, id: i64) -> Record {
    Record::new(vec![
        Value::Int(id),
        Value::Str(format!("emp{id}")),
        Value::Int(rng.range_i64(0, 10)),
        Value::Float(1000.0 + rng.below(100) as f64),
    ])
}

/// Scenario 1/2: bulk insert `scale.rows` records, committing in
/// batches, into a heap or b-tree relation. B-tree keys arrive shuffled
/// so page splits happen throughout the load.
fn bulk_insert(scale: &Scale, seed: u64, btree: bool) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    let ddl = if btree {
        "CREATE TABLE t (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT) \
         USING btree WITH (key=id)"
    } else {
        "CREATE TABLE t (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT)"
    };
    db.execute_sql(ddl).expect("create table");
    let rd = db.catalog().get_by_name("t").expect("descriptor");
    let mut rng = TestRng::new(seed);
    let mut ids: Vec<i64> = (0..scale.rows as i64).collect();
    if btree {
        rng.shuffle(&mut ids);
    }
    for chunk in ids.chunks(256) {
        db.with_txn(|txn| {
            for &id in chunk {
                db.insert(txn, rd.id, emp_record(&mut rng, id))?;
            }
            Ok(())
        })
        .expect("batch insert");
    }
    WorkloadResult {
        ops: scale.rows as u64,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 3: seeded point lookups through a unique b-tree index
/// attachment, issued as SQL so the query layer is measured too.
fn point_lookups(scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    crate::load_emp(
        &db,
        "t",
        scale.rows,
        &["CREATE UNIQUE INDEX t_pk ON {t} (id)"],
    )
    .expect("load");
    let mut rng = TestRng::new(seed);
    let sess = Session::new(db.clone());
    let mut found = 0u64;
    for _ in 0..scale.lookups {
        let id = rng.range_i64(0, scale.rows as i64);
        let rows = sess
            .execute(&format!("SELECT name FROM t WHERE id = {id}"))
            .expect("lookup")
            .rows;
        found += rows.len() as u64;
    }
    assert_eq!(found, scale.lookups as u64, "every lookup must hit");
    WorkloadResult {
        ops: scale.lookups as u64,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 4: repeated scans with a range predicate pushed into the
/// storage method (selectivity drawn from the seed).
fn scan_predicate(scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    crate::load_emp(&db, "t", scale.rows, &[]).expect("load");
    let mut rng = TestRng::new(seed);
    let mut rows_out = 0u64;
    for _ in 0..scale.scans {
        let limit = rng.range_i64(1, scale.rows as i64 + 1);
        let rows = db
            .query_sql(&format!("SELECT id FROM t WHERE id < {limit}"))
            .expect("scan");
        assert_eq!(rows.len() as i64, limit, "predicate must select [0, limit)");
        rows_out += rows.len() as u64;
    }
    WorkloadResult {
        ops: rows_out,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 5: a seeded insert/update/delete mix over a parent/child
/// pair with referential-integrity attachments and a unique index; a
/// slice of the operations intentionally violate the constraints and
/// must be vetoed.
fn mixed_dml(scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    db.execute_sql("CREATE TABLE dept (id INT NOT NULL, name STRING NOT NULL)")
        .expect("dept");
    db.execute_sql("CREATE UNIQUE INDEX dept_pk ON dept (id)")
        .expect("dept_pk");
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .expect("emp");
    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")
        .expect("emp_pk");
    db.execute_sql(
        "CREATE ATTACHMENT fk_c ON emp USING refint \
         WITH (role=child, fields=dept, other=dept, other_fields=id)",
    )
    .expect("fk child");
    db.execute_sql(
        "CREATE ATTACHMENT fk_p ON dept USING refint \
         WITH (role=parent, fields=id, other=emp, other_fields=dept)",
    )
    .expect("fk parent");
    const DEPTS: i64 = 8;
    for d in 0..DEPTS {
        db.execute_sql(&format!("INSERT INTO dept VALUES ({d}, 'd{d}')"))
            .expect("seed dept");
    }

    let mut rng = TestRng::new(seed);
    let sess = Session::new(db.clone());
    let mut live: Vec<i64> = Vec::new();
    let mut next_id: i64 = 0;
    let mut vetoed = 0u64;
    for _ in 0..scale.dml_ops {
        let roll = rng.below(100);
        let r = if roll < 50 || live.is_empty() {
            // insert; ~1 in 8 aims at a dept that does not exist
            let dept = if rng.below(8) == 0 {
                DEPTS + rng.range_i64(1, 100)
            } else {
                rng.range_i64(0, DEPTS)
            };
            let id = next_id;
            let r = sess.execute(&format!("INSERT INTO emp VALUES ({id}, 'e{id}', {dept})"));
            if r.is_ok() {
                next_id += 1;
                live.push(id);
            }
            r
        } else if roll < 75 {
            // update; ~1 in 8 moves the row to a missing dept
            let id = live[rng.index(live.len())];
            let dept = if rng.below(8) == 0 {
                DEPTS + rng.range_i64(1, 100)
            } else {
                rng.range_i64(0, DEPTS)
            };
            sess.execute(&format!("UPDATE emp SET dept = {dept} WHERE id = {id}"))
        } else {
            // delete an existing child row
            let at = rng.index(live.len());
            let id = live.swap_remove(at);
            sess.execute(&format!("DELETE FROM emp WHERE id = {id}"))
        };
        if r.is_err() {
            vetoed += 1;
        }
    }
    assert!(vetoed > 0, "the seeded mix must exercise constraint vetoes");
    let alive = db.query_sql("SELECT COUNT(*) FROM emp").expect("count")[0][0]
        .as_int()
        .expect("int");
    assert_eq!(alive as usize, live.len(), "model and database disagree");
    WorkloadResult {
        ops: scale.dml_ops as u64,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 6: committed work plus one in-flight loser, then a simulated
/// crash; the metrics are the *reopened* database's — i.e. the cost of
/// restart recovery itself (log replay, undo, pool traffic).
fn recovery_replay(scale: &Scale, seed: u64) -> WorkloadResult {
    let env = DatabaseEnv::fresh();
    let db = Database::open(env.clone(), DatabaseConfig::default(), registry()).expect("open");
    db.execute_sql(
        "CREATE TABLE t (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT)",
    )
    .expect("create");
    db.execute_sql("CREATE UNIQUE INDEX t_pk ON t (id)")
        .expect("index");
    let rd = db.catalog().get_by_name("t").expect("descriptor");
    let mut rng = TestRng::new(seed);
    let n = scale.rows / 2;
    for chunk in (0..n as i64).collect::<Vec<_>>().chunks(256) {
        db.with_txn(|txn| {
            for &id in chunk {
                db.insert(txn, rd.id, emp_record(&mut rng, id))?;
            }
            Ok(())
        })
        .expect("committed load");
    }
    // A loser: its updates reach the stable log (the following commit
    // forces past them) but the transaction never commits.
    let loser = db.begin();
    for id in 0..64.min(n as i64) {
        db.insert(&loser, rd.id, emp_record(&mut rng, n as i64 + id))
            .expect("loser insert");
    }
    db.with_txn(|txn| db.insert(txn, rd.id, emp_record(&mut rng, -1)))
        .expect("forcing commit");
    drop(loser);
    drop(db);

    // Crash: reopen over the surviving env. The snapshot is the cost of
    // recovery, not of the original workload.
    let db = Database::open(env, DatabaseConfig::default(), registry()).expect("reopen");
    let count = db.query_sql("SELECT COUNT(*) FROM t").expect("count")[0][0]
        .as_int()
        .expect("int");
    assert_eq!(count, n as i64 + 1, "losers must be undone, commits kept");
    WorkloadResult {
        ops: count as u64,
        metrics: db.metrics_snapshot(),
    }
}

/// Runs every scenario once, timing the deterministic region.
pub fn run_timed(scale: &Scale, seed: u64) -> Vec<ScenarioOutcome> {
    scenarios()
        .into_iter()
        .map(|s| {
            let start = Instant::now();
            let r = (s.run)(scale, seed);
            let elapsed = start.elapsed();
            ScenarioOutcome {
                name: s.name,
                ops: r.ops,
                elapsed,
                metrics: r.metrics,
            }
        })
        .collect()
}

/// Renders the outcomes as the `BENCH_pr3.json` document.
pub fn render_json(outcomes: &[ScenarioOutcome], seed: u64, scale: &Scale) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"pr3-observability\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"rows\": {}, \"lookups\": {}, \"scans\": {}, \"dml_ops\": {}}},",
        scale.rows, scale.lookups, scale.scans, scale.dml_ops
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let secs = o.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { o.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"metrics\": {}}}",
            o.name,
            o.ops,
            secs * 1e3,
            per_sec,
            o.metrics.to_json()
        );
        s.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Layer coverage required of every scenario snapshot (the acceptance
/// bar: pagestore, wal, lock and core all observed).
pub const REQUIRED_PREFIXES: &[&str] = &["pool.", "wal.", "lock.", "txn.", "dml."];

/// Asserts a snapshot spans the required layers and carries at least
/// `min_names` distinct metrics. Returns the distinct-name count.
pub fn assert_layer_coverage(m: &MetricsSnapshot, min_names: usize) -> usize {
    let names: Vec<&str> = m
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .chain(m.gauges.iter().map(|(n, _)| n.as_str()))
        .chain(m.histograms.iter().map(|(n, _)| n.as_str()))
        .collect();
    for prefix in REQUIRED_PREFIXES {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no metric under {prefix} in snapshot"
        );
    }
    assert!(
        names.len() >= min_names,
        "only {} distinct metrics (need {min_names})",
        names.len()
    );
    names.len()
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_deterministic_and_covers_layers() {
        let scale = Scale::smoke();
        for s in scenarios() {
            let a = (s.run)(&scale, DEFAULT_SEED);
            let b = (s.run)(&scale, DEFAULT_SEED);
            assert_eq!(a.ops, b.ops, "{}: op count drifted", s.name);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: same seed, different snapshot",
                s.name
            );
            assert_layer_coverage(&a.metrics, 12);
        }
    }
}
