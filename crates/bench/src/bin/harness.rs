//! The experiment harness: regenerates every experiment in DESIGN.md §4.
//!
//! The paper (SIGMOD '87) publishes no measured tables — its evaluation is
//! architectural — so each experiment here measures one of its explicit
//! performance claims or design choices. EXPERIMENTS.md records the
//! claim, the harness output, and whether the claimed *shape* holds.
//!
//! Run with: `cargo run --release -p dmx-bench --bin harness`

// Same panic-discipline exemption as the bench library: the harness is
// not a runtime crate, and a broken fixture should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]
//! (or a subset: `… --bin harness e1 e5`)

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmx_bench::*;
use dmx_core::{AccessPath, AccessQuery, Database, StorageMethod};
use dmx_expr::{CmpOp, Expr};
use dmx_query::{PlanCache, Session, SqlExt};
use dmx_types::{DmxError, Record, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    if args.iter().any(|a| a == "--smoke") {
        pr3_smoke();
        return;
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let experiments: Vec<(&str, fn())> = vec![
        ("e1", e1_dispatch as fn()),
        ("e2", e2_attachments),
        ("e3", e3_filter),
        ("e4", e4_bind),
        ("e5", e5_paths),
        ("e6", e6_join),
        ("e7", e7_deferred),
        ("e8", e8_rollback),
        ("e9", e9_storage),
        ("e10", e10_descriptor),
        ("e11", e11_cascade),
        ("e12", e12_concurrency),
    ];
    println!("starburst-dmx experiment harness");
    println!("(figures F1/F2 are executable scenarios: see tests/extension_registration.rs");
    println!(" and crates/attach/tests/attachments.rs::figure1_employee_configuration)\n");
    for (name, f) in experiments {
        if want(name) {
            f();
            println!();
        }
    }
    if want("pr3") {
        pr3_baseline();
    }
    if want("pr5") {
        pr5_baseline();
    }
    if want("pr7") {
        pr7_baseline();
    }
    if want("pr8") {
        pr8_baseline();
    }
    if want("pr9") {
        pr9_baseline();
    }
    if want("pr10") {
        pr10_baseline();
    }
}

// ---------------------------------------------------------------------
// PR3: seeded observability scenarios -> BENCH_pr3.json
// ---------------------------------------------------------------------

/// Full-scale run: writes the `BENCH_pr3.json` baseline next to the
/// workspace root (or the current directory when run elsewhere).
fn pr3_baseline() {
    banner(
        "PR3",
        "seeded observability scenarios: throughput + full metrics snapshot",
    );
    let scale = pr3::Scale::full();
    let seed = pr3::DEFAULT_SEED;
    let outcomes = pr3::run_timed(&scale, seed);
    let w = [26, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "ops".into(),
                "elapsed ms".into(),
                "ops/sec".into(),
                "metrics".into()
            ],
            &w
        )
    );
    for o in &outcomes {
        let names = pr3::assert_layer_coverage(&o.metrics, 12);
        let secs = o.elapsed.as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    o.name.into(),
                    o.ops.to_string(),
                    ms(o.elapsed),
                    format!("{:.0}", o.ops as f64 / secs.max(1e-9)),
                    names.to_string()
                ],
                &w
            )
        );
    }
    let json = pr3::render_json(&outcomes, seed, &scale);
    let path = if std::path::Path::new("Cargo.toml").exists() {
        "BENCH_pr3.json".to_string()
    } else {
        // `cargo run -p …` from a subdirectory: walk up to the workspace
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_pr3.json"))
            .unwrap_or_else(|_| "BENCH_pr3.json".to_string())
    };
    std::fs::write(&path, json).expect("write BENCH_pr3.json");
    println!("\nwrote {path}");
}

/// Full-scale run of the PR5 observability-extension scenarios; writes
/// the `BENCH_pr5.json` baseline next to the workspace root.
fn pr5_baseline() {
    banner(
        "PR5",
        "sys.* relations, EXPLAIN ANALYZE and the flight recorder as seeded workloads",
    );
    let scale = pr3::Scale::full();
    let seed = pr3::DEFAULT_SEED;
    let outcomes = pr5::run_timed(&scale, seed);
    let w = [26, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "ops".into(),
                "elapsed ms".into(),
                "ops/sec".into(),
                "metrics".into()
            ],
            &w
        )
    );
    for o in &outcomes {
        let names = o.metrics.counters.len() + o.metrics.gauges.len() + o.metrics.histograms.len();
        let secs = o.elapsed.as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    o.name.into(),
                    o.ops.to_string(),
                    ms(o.elapsed),
                    format!("{:.0}", o.ops as f64 / secs.max(1e-9)),
                    names.to_string()
                ],
                &w
            )
        );
    }
    let json = pr5::render_json(&outcomes, seed, &scale);
    let path = if std::path::Path::new("Cargo.toml").exists() {
        "BENCH_pr5.json".to_string()
    } else {
        // `cargo run -p …` from a subdirectory: walk up to the workspace
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_pr5.json"))
            .unwrap_or_else(|_| "BENCH_pr5.json".to_string())
    };
    std::fs::write(&path, json).expect("write BENCH_pr5.json");
    println!("\nwrote {path}");
}

/// Full-scale run of the PR7 self-healing scenarios; writes the
/// `BENCH_pr7.json` baseline next to the workspace root.
fn pr7_baseline() {
    banner(
        "PR7",
        "online scrub overhead and the quarantine-repair pipeline as seeded workloads",
    );
    let scale = pr3::Scale::full();
    let seed = pr3::DEFAULT_SEED;
    let outcomes = pr7::run_timed(&scale, seed);
    let w = [26, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "ops".into(),
                "elapsed ms".into(),
                "ops/sec".into(),
                "metrics".into()
            ],
            &w
        )
    );
    for o in &outcomes {
        let names = o.metrics.counters.len() + o.metrics.gauges.len() + o.metrics.histograms.len();
        let secs = o.elapsed.as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    o.name.into(),
                    o.ops.to_string(),
                    ms(o.elapsed),
                    format!("{:.0}", o.ops as f64 / secs.max(1e-9)),
                    names.to_string()
                ],
                &w
            )
        );
    }
    let json = pr7::render_json(&outcomes, seed, &scale);
    let path = if std::path::Path::new("Cargo.toml").exists() {
        "BENCH_pr7.json".to_string()
    } else {
        // `cargo run -p …` from a subdirectory: walk up to the workspace
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_pr7.json"))
            .unwrap_or_else(|_| "BENCH_pr7.json".to_string())
    };
    std::fs::write(&path, json).expect("write BENCH_pr7.json");
    println!("\nwrote {path}");
}

/// Full-scale run of the PR8 recovery-architecture scenarios; writes
/// the `BENCH_pr8.json` baseline next to the workspace root. The
/// bulk-insert and DML scenarios are the pr3 workloads rerun under
/// steal/no-force commit, so `scripts/check.sh` can ratchet
/// `bulk_insert_btree` against the `BENCH_pr3.json` figure.
fn pr8_baseline() {
    banner(
        "PR8",
        "no-force commit and group commit: pr3 workloads rerun + concurrent committers",
    );
    let scale = pr3::Scale::full();
    let seed = pr3::DEFAULT_SEED;
    let outcomes = pr8::run_timed(&scale, seed);
    let w = [26, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "ops".into(),
                "elapsed ms".into(),
                "ops/sec".into(),
                "metrics".into()
            ],
            &w
        )
    );
    for o in &outcomes {
        let names = o.metrics.counters.len() + o.metrics.gauges.len() + o.metrics.histograms.len();
        let secs = o.elapsed.as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    o.name.into(),
                    o.ops.to_string(),
                    ms(o.elapsed),
                    format!("{:.0}", o.ops as f64 / secs.max(1e-9)),
                    names.to_string()
                ],
                &w
            )
        );
    }
    let json = pr8::render_json(&outcomes, seed, &scale);
    let path = if std::path::Path::new("Cargo.toml").exists() {
        "BENCH_pr8.json".to_string()
    } else {
        // `cargo run -p …` from a subdirectory: walk up to the workspace
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_pr8.json"))
            .unwrap_or_else(|_| "BENCH_pr8.json".to_string())
    };
    std::fs::write(&path, json).expect("write BENCH_pr8.json");
    println!("\nwrote {path}");
}

/// Full-scale run of the PR9 MVCC scenarios; writes the
/// `BENCH_pr9.json` baseline next to the workspace root. Both
/// scenarios run the identical seeded read-mostly workload, so
/// `scripts/check.sh` can ratchet the snapshot path's `lock.acquires`
/// collapse against the locking baseline.
fn pr9_baseline() {
    banner(
        "PR9",
        "MVCC snapshot reads: read-mostly workload, locking vs snapshot scan path",
    );
    let scale = pr3::Scale::full();
    let seed = pr3::DEFAULT_SEED;
    let outcomes = pr9::run_timed(&scale, seed);
    let w = [26, 12, 12, 12, 14];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "ops".into(),
                "elapsed ms".into(),
                "ops/sec".into(),
                "lock.acquires".into()
            ],
            &w
        )
    );
    for o in &outcomes {
        let secs = o.elapsed.as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    o.name.into(),
                    o.ops.to_string(),
                    ms(o.elapsed),
                    format!("{:.0}", o.ops as f64 / secs.max(1e-9)),
                    o.metrics.counter("lock.acquires").to_string()
                ],
                &w
            )
        );
    }
    let json = pr9::render_json(&outcomes, seed, &scale);
    let path = if std::path::Path::new("Cargo.toml").exists() {
        "BENCH_pr9.json".to_string()
    } else {
        // `cargo run -p …` from a subdirectory: walk up to the workspace
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_pr9.json"))
            .unwrap_or_else(|_| "BENCH_pr9.json".to_string())
    };
    std::fs::write(&path, json).expect("write BENCH_pr9.json");
    println!("\nwrote {path}");
}

/// Full-scale run of the PR10 maintained-statistics scenarios; writes
/// the `BENCH_pr10.json` baseline next to the workspace root. The two
/// misestimate lanes run the identical skewed query matrix, so
/// `scripts/check.sh` can ratchet the p90 estimate-error shrink (and
/// the DML lanes' maintenance overhead) against the guess baseline.
fn pr10_baseline() {
    banner(
        "PR10",
        "maintained statistics: misestimate shrink, plan flips and maintenance overhead",
    );
    let scale = pr3::Scale::full();
    let seed = pr3::DEFAULT_SEED;
    let outcomes = pr10::run_timed(&scale, seed);
    let w = [26, 12, 12, 12, 14];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "ops".into(),
                "elapsed ms".into(),
                "ops/sec".into(),
                "misest p90".into()
            ],
            &w
        )
    );
    for o in &outcomes {
        let secs = o.elapsed.as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    o.name.into(),
                    o.ops.to_string(),
                    ms(o.elapsed),
                    format!("{:.0}", o.ops as f64 / secs.max(1e-9)),
                    o.metrics.counter("bench.misest_p90").to_string()
                ],
                &w
            )
        );
    }
    let json = pr10::render_json(&outcomes, seed, &scale);
    let path = if std::path::Path::new("Cargo.toml").exists() {
        "BENCH_pr10.json".to_string()
    } else {
        // `cargo run -p …` from a subdirectory: walk up to the workspace
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_pr10.json"))
            .unwrap_or_else(|_| "BENCH_pr10.json".to_string())
    };
    std::fs::write(&path, json).expect("write BENCH_pr10.json");
    println!("\nwrote {path}");
}

/// `--smoke`: small scale, every scenario run twice; asserts the two
/// snapshots are identical (determinism) and that each covers the
/// pagestore/wal/lock/txn/core layers. Used by scripts/check.sh.
fn pr3_smoke() {
    let scale = pr3::Scale::smoke();
    let seed = pr3::DEFAULT_SEED;
    for s in pr3::scenarios() {
        let a = (s.run)(&scale, seed);
        let b = (s.run)(&scale, seed);
        assert_eq!(a.ops, b.ops, "{}: op count drifted between runs", s.name);
        assert_eq!(
            a.metrics, b.metrics,
            "{}: same seed produced different snapshots",
            s.name
        );
        let names = pr3::assert_layer_coverage(&a.metrics, 12);
        println!("smoke {:<26} ok  ops={:<7} metrics={names}", s.name, a.ops);
    }
    for s in pr5::scenarios().into_iter().chain(pr7::scenarios()) {
        let a = (s.run)(&scale, seed);
        let b = (s.run)(&scale, seed);
        assert_eq!(a.ops, b.ops, "{}: op count drifted between runs", s.name);
        assert_eq!(
            a.metrics, b.metrics,
            "{}: same seed produced different snapshots",
            s.name
        );
        println!("smoke {:<26} ok  ops={}", s.name, a.ops);
    }
    for s in pr8::scenarios() {
        let a = (s.run)(&scale, seed);
        // `concurrent_committers` races real threads, so its force/batch
        // split is not seed-determined; its invariants (all commits land,
        // forces < commits) are asserted inside the scenario itself.
        if !pr8::is_deterministic(s.name) {
            println!("smoke {:<26} ok  ops={} (invariants only)", s.name, a.ops);
            continue;
        }
        let b = (s.run)(&scale, seed);
        assert_eq!(a.ops, b.ops, "{}: op count drifted between runs", s.name);
        assert_eq!(
            a.metrics, b.metrics,
            "{}: same seed produced different snapshots",
            s.name
        );
        println!("smoke {:<26} ok  ops={}", s.name, a.ops);
    }
    for s in pr9::scenarios().into_iter().chain(pr10::scenarios()) {
        let a = (s.run)(&scale, seed);
        let b = (s.run)(&scale, seed);
        assert_eq!(a.ops, b.ops, "{}: op count drifted between runs", s.name);
        assert_eq!(
            a.metrics, b.metrics,
            "{}: same seed produced different snapshots",
            s.name
        );
        println!("smoke {:<26} ok  ops={}", s.name, a.ops);
    }
    println!("bench smoke: all scenarios deterministic");
}

fn banner(id: &str, claim: &str) {
    println!("=== {id} — {claim}");
}

// ---------------------------------------------------------------------
// E1: procedure-vector dispatch cost
// ---------------------------------------------------------------------
fn e1_dispatch() {
    banner(
        "E1",
        "\"the linkage to storage method … routines … must be very efficient\" — \
         id-indexed procedure vectors vs alternatives",
    );
    let reg = registry();
    let heap_id = reg.storage_id_by_name("heap").unwrap();
    let heap: Arc<dyn StorageMethod> = reg.storage(heap_id).unwrap();
    let concrete = dmx_storage::HeapStorage;
    // the rejected alternative, given the same thread-safety duties as the
    // registry (shared lock + owned handle per activation)
    let by_name: dmx_types::sync::RwLock<HashMap<String, Arc<dyn StorageMethod>>> = {
        let mut m: HashMap<String, Arc<dyn StorageMethod>> = HashMap::new();
        for (id, name) in reg.storage_methods() {
            m.insert(name.clone(), reg.storage(id).unwrap());
        }
        dmx_types::sync::RwLock::new(m)
    };
    const N: usize = 2_000_000;

    // (a) direct static call on the concrete type
    let (_, d_static) = time(|| {
        let mut acc = 0u64;
        for i in 0..N {
            acc = acc.wrapping_add(std::hint::black_box(&concrete).name().len() as u64 + i as u64);
        }
        std::hint::black_box(acc)
    });
    // (b) procedure-vector activation: index the vector, indirect call
    let (_, d_vector) = time(|| {
        let mut acc = 0u64;
        for i in 0..N {
            let sm = reg.storage(std::hint::black_box(heap_id)).unwrap();
            acc = acc.wrapping_add(sm.name().len() as u64 + i as u64);
        }
        std::hint::black_box(acc)
    });
    // (c) pre-resolved trait object (vector lookup hoisted out)
    let (_, d_dyn) = time(|| {
        let mut acc = 0u64;
        for i in 0..N {
            acc = acc.wrapping_add(std::hint::black_box(&heap).name().len() as u64 + i as u64);
        }
        std::hint::black_box(acc)
    });
    // (d) name-keyed hash lookup per call (the rejected alternative)
    let (_, d_name) = time(|| {
        let mut acc = 0u64;
        for i in 0..N {
            let sm = by_name
                .read()
                .get(std::hint::black_box("heap"))
                .cloned()
                .unwrap();
            acc = acc.wrapping_add(sm.name().len() as u64 + i as u64);
        }
        std::hint::black_box(acc)
    });
    let w = [34, 12];
    println!("{}", row(&["mechanism".into(), "ns/call".into()], &w));
    for (name, d) in [
        ("static (concrete type)", d_static),
        ("pre-resolved trait object", d_dyn),
        ("procedure vector (id index)", d_vector),
        ("hash lookup by name", d_name),
    ] {
        println!("{}", row(&[name.into(), ns_per(d, N)], &w));
    }
}

// ---------------------------------------------------------------------
// E2: attachment invocation scaling
// ---------------------------------------------------------------------
fn e2_attachments() {
    banner(
        "E2",
        "attached procedures are invoked once per modification per type with \
         instances; absent types (NULL descriptor fields) cost nothing",
    );
    const N: usize = 3000;
    let configs: Vec<(&str, Vec<String>)> = vec![
        ("no attachments", vec![]),
        ("1 btree index", vec!["CREATE INDEX i0 ON {t} (id)".into()]),
        (
            "2 btree indexes",
            (0..2)
                .map(|i| format!("CREATE INDEX i{i} ON {{t}} (id)"))
                .collect(),
        ),
        (
            "4 btree indexes",
            (0..4)
                .map(|i| format!("CREATE INDEX i{i} ON {{t}} (id)"))
                .collect(),
        ),
        (
            "8 btree indexes",
            (0..8)
                .map(|i| format!("CREATE INDEX i{i} ON {{t}} (id)"))
                .collect(),
        ),
        (
            "1 index + 1 hash + 1 check + 1 aggregate",
            vec![
                "CREATE INDEX i0 ON {t} (id)".into(),
                "CREATE INDEX h0 ON {t} USING hash (name)".into(),
                "CREATE CONSTRAINT c0 ON {t} CHECK (salary > 0)".into(),
                "CREATE ATTACHMENT a0 ON {t} USING aggregate WITH (sum=salary, group_by=dept)"
                    .into(),
            ],
        ),
    ];
    let w = [40, 12, 14];
    println!(
        "{}",
        row(
            &[
                "configuration".into(),
                "total ms".into(),
                "µs/insert".into()
            ],
            &w
        )
    );
    for (name, idx) in configs {
        let db = open_db();
        let specs: Vec<&str> = idx.iter().map(|s| s.as_str()).collect();
        let ((), d) = time(|| {
            load_emp(&db, "t", N, &specs).unwrap();
        });
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    ms(d),
                    format!("{:.1}", d.as_secs_f64() * 1e6 / N as f64)
                ],
                &w
            )
        );
    }
}

// ---------------------------------------------------------------------
// E3: predicate evaluation in the buffer pool
// ---------------------------------------------------------------------
fn e3_filter() {
    banner(
        "E3",
        "\"filter predicates … evaluated while the field values … are still in \
         the buffer pool\" vs copy-out-then-filter",
    );
    const N: usize = 50_000;
    let db = open_db();
    load_emp(&db, "t", N, &[]).unwrap();
    let rd = db.catalog().get_by_name("t").unwrap();
    let w = [12, 14, 14, 10];
    println!(
        "{}",
        row(
            &[
                "selectivity".into(),
                "in-pool ms".into(),
                "copy-out ms".into(),
                "speedup".into()
            ],
            &w
        )
    );
    for frac in [0.001, 0.01, 0.1, 0.5, 1.0] {
        let limit = (N as f64 * frac) as i64;
        let pred = Expr::cmp_col(CmpOp::Lt, 0, limit);
        // (a) predicate pushed into the storage method
        let (n_a, d_a) = time(|| {
            db.with_txn(|txn| {
                let scan = db.open_scan(
                    txn,
                    rd.id,
                    AccessPath::StorageMethod,
                    AccessQuery::All,
                    Some(pred.clone()),
                    Some(vec![0]),
                )?;
                let mut n = 0u64;
                while db.scan_next(txn, scan)?.is_some() {
                    n += 1;
                }
                Ok(n)
            })
            .unwrap()
        });
        // (b) every record copied out in full, filtered by the caller
        let (n_b, d_b) = time(|| {
            db.with_txn(|txn| {
                let scan = db.open_scan(
                    txn,
                    rd.id,
                    AccessPath::StorageMethod,
                    AccessQuery::All,
                    None,
                    None,
                )?;
                let mut n = 0u64;
                let funcs = db.services().funcs.read();
                while let Some(item) = db.scan_next(txn, scan)? {
                    let values = item.values.unwrap();
                    if dmx_expr::eval_predicate(&pred, &values, dmx_expr::EvalContext::new(&funcs))?
                    {
                        n += 1;
                    }
                }
                Ok(n)
            })
            .unwrap()
        });
        assert_eq!(n_a, n_b);
        println!(
            "{}",
            row(
                &[
                    format!("{frac}"),
                    ms(d_a),
                    ms(d_b),
                    format!("{:.2}x", d_b.as_secs_f64() / d_a.as_secs_f64())
                ],
                &w
            )
        );
    }
}

// ---------------------------------------------------------------------
// E4: bound plans vs re-translation
// ---------------------------------------------------------------------
fn e4_bind() {
    banner(
        "E4",
        "query binding \"avoids the non-trivial costs of accessing the relation \
         descriptions and optimizing the query at query execution time\"",
    );
    let db = open_db();
    load_emp(&db, "t", 20_000, &["CREATE UNIQUE INDEX t_pk ON {t} (id)"]).unwrap();
    let cache = db.query_state::<PlanCache, _>(PlanCache::default);
    let q = "SELECT name FROM t WHERE id = 12345";
    const N: usize = 2000;
    db.query_sql(q).unwrap(); // warm
    let (_, d_cached) = time(|| {
        for _ in 0..N {
            db.query_sql(q).unwrap();
        }
    });
    let (_, d_fresh) = time(|| {
        for _ in 0..N {
            cache.clear(&db);
            db.query_sql(q).unwrap();
        }
    });
    let w = [34, 14];
    println!("{}", row(&["mode".into(), "µs/execution".into()], &w));
    println!(
        "{}",
        row(
            &[
                "bound plan reused".into(),
                format!("{:.1}", d_cached.as_secs_f64() * 1e6 / N as f64)
            ],
            &w
        )
    );
    println!(
        "{}",
        row(
            &[
                "re-translated every call".into(),
                format!("{:.1}", d_fresh.as_secs_f64() * 1e6 / N as f64)
            ],
            &w
        )
    );
    println!(
        "cache stats: hits={} misses={} retranslations={}",
        cache.stats.hits.load(Ordering::Relaxed),
        cache.stats.misses.load(Ordering::Relaxed),
        cache.stats.retranslations.load(Ordering::Relaxed)
    );
    // invalidation → automatic re-translation still answers
    db.execute_sql("DROP INDEX t_pk ON t").unwrap();
    let (_, d_after) = time(|| db.query_sql(q).unwrap());
    println!(
        "first execution after DROP INDEX (auto re-translation): {} µs",
        us(d_after)
    );
}

// ---------------------------------------------------------------------
// E5: access-path selection quality
// ---------------------------------------------------------------------
fn e5_paths() {
    banner(
        "E5",
        "cost estimation picks the right access path; crossover between index \
         and scan as selectivity grows (B-tree recognizes key predicates)",
    );
    const N: usize = 50_000;
    let db = open_db();
    load_emp(&db, "t", N, &["CREATE UNIQUE INDEX t_pk ON {t} (id)"]).unwrap();
    let w = [12, 12, 12, 14, 18];
    println!(
        "{}",
        row(
            &[
                "rows out".into(),
                "scan ms".into(),
                "index ms".into(),
                "planner ms".into(),
                "planner chose".into()
            ],
            &w
        )
    );
    for k in [1i64, 50, 500, 5_000, 50_000] {
        let q = format!("SELECT COUNT(*) FROM t WHERE id < {k}");
        // forced storage-method scan
        let rd = db.catalog().get_by_name("t").unwrap();
        let pred = Expr::cmp_col(CmpOp::Lt, 0, k);
        let (_, d_scan) = time(|| {
            db.with_txn(|txn| {
                let scan = db.open_scan(
                    txn,
                    rd.id,
                    AccessPath::StorageMethod,
                    AccessQuery::All,
                    Some(pred.clone()),
                    Some(vec![0]),
                )?;
                let mut n = 0;
                while db.scan_next(txn, scan)?.is_some() {
                    n += 1;
                }
                Ok(n)
            })
            .unwrap()
        });
        // forced index range
        let (att_t, inst) = rd.find_attachment("t_pk").unwrap();
        let att = db.registry().attachment(att_t).unwrap();
        let choice = att
            .estimate(&rd, inst, std::slice::from_ref(&pred))
            .unwrap();
        let (_, d_index) = time(|| {
            db.with_txn(|txn| {
                let scan = db.open_scan(
                    txn,
                    rd.id,
                    AccessPath::Attachment(att_t, inst.instance),
                    choice.query.clone(),
                    None,
                    None,
                )?;
                let mut n = 0;
                while db.scan_next(txn, scan)?.is_some() {
                    n += 1;
                }
                Ok(n)
            })
            .unwrap()
        });
        // the planner's pick
        let (_, d_planner) = time(|| db.query_sql(&q).unwrap());
        let plan = db.query_sql(&format!("EXPLAIN {q}")).unwrap();
        let text: String = plan
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        let chose = if text.contains("attachment") {
            "index"
        } else {
            "scan"
        };
        println!(
            "{}",
            row(
                &[
                    k.to_string(),
                    ms(d_scan),
                    ms(d_index),
                    ms(d_planner),
                    chose.into()
                ],
                &w
            )
        );
    }
}

// ---------------------------------------------------------------------
// E6: join strategies
// ---------------------------------------------------------------------
fn e6_join() {
    banner(
        "E6",
        "join index (Valduriez attachment with storage) vs index nested loop vs \
         plain nested loop",
    );
    let w = [10, 10, 14, 14, 14];
    println!(
        "{}",
        row(
            &[
                "|emp|".into(),
                "|dept|".into(),
                "NL ms".into(),
                "index-NL ms".into(),
                "join-index ms".into()
            ],
            &w
        )
    );
    for (n_emp, n_dept) in [(2_000usize, 50usize), (10_000, 200)] {
        let q = "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d.id";
        let mk = |with_index: bool, with_ji: bool| -> Duration {
            let db = open_db();
            db.execute_sql("CREATE TABLE dept (id INT NOT NULL, dname STRING NOT NULL)")
                .unwrap();
            db.execute_sql(
                "CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT)",
            )
            .unwrap();
            if with_index {
                db.execute_sql("CREATE UNIQUE INDEX dept_pk ON dept (id)")
                    .unwrap();
            }
            if with_ji {
                db.execute_sql(
                    "CREATE ATTACHMENT ed ON emp USING joinindex WITH (side=left, fields=dept)",
                )
                .unwrap();
                db.execute_sql(
                    "CREATE ATTACHMENT ed ON dept USING joinindex WITH (side=right, fields=id, other=emp)",
                )
                .unwrap();
            }
            let dept_rd = db.catalog().get_by_name("dept").unwrap();
            let emp_rd = db.catalog().get_by_name("emp").unwrap();
            db.with_txn(|txn| {
                for d in 0..n_dept {
                    db.insert(
                        txn,
                        dept_rd.id,
                        Record::new(vec![Value::Int(d as i64), Value::Str(format!("d{d}"))]),
                    )?;
                }
                for i in 0..n_emp {
                    db.insert(
                        txn,
                        emp_rd.id,
                        Record::new(vec![
                            Value::Int(i as i64),
                            Value::Str(format!("e{i}")),
                            Value::Int((i % n_dept) as i64),
                            Value::Float(1.0),
                        ]),
                    )?;
                }
                Ok(())
            })
            .unwrap();
            let rows = db.query_sql(q).unwrap();
            assert_eq!(rows[0][0], Value::Int(n_emp as i64));
            let (_, d) = time(|| db.query_sql(q).unwrap());
            d
        };
        let nl = mk(false, false);
        let inl = mk(true, false);
        let ji = mk(false, true);
        println!(
            "{}",
            row(
                &[
                    n_emp.to_string(),
                    n_dept.to_string(),
                    ms(nl),
                    ms(inl),
                    ms(ji)
                ],
                &w
            )
        );
    }
}

// ---------------------------------------------------------------------
// E7: deferred constraints
// ---------------------------------------------------------------------
fn e7_deferred() {
    banner(
        "E7",
        "deferred action queues: constraints evaluated \"after all of the \
         modifications have been made in the transaction\"",
    );
    const N: usize = 2000;
    let run = |mode: &str| -> Duration {
        let db = open_db();
        db.execute_sql("CREATE TABLE t (id INT NOT NULL, bal FLOAT NOT NULL)")
            .unwrap();
        match mode {
            "immediate" => {
                db.execute_sql("CREATE CONSTRAINT c ON t CHECK (bal >= 0)")
                    .unwrap();
            }
            "deferred" => {
                db.execute_sql("CREATE CONSTRAINT c ON t CHECK (bal >= 0) DEFERRED")
                    .unwrap();
            }
            _ => {}
        }
        let sess = Session::new(db);
        sess.execute("BEGIN").unwrap();
        let (_, d) = time(|| {
            for i in 0..N {
                sess.execute(&format!("INSERT INTO t VALUES ({i}, {i}.0)"))
                    .unwrap();
            }
            sess.execute("COMMIT").unwrap();
        });
        d
    };
    let w = [22, 14];
    println!("{}", row(&["constraint mode".into(), "txn ms".into()], &w));
    for mode in ["none", "immediate", "deferred"] {
        println!("{}", row(&[mode.into(), ms(run(mode))], &w));
    }
    // the semantic difference: a transient violation only commits deferred
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, bal FLOAT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE CONSTRAINT c ON t CHECK (bal >= 0) DEFERRED")
        .unwrap();
    let sess = Session::new(db);
    sess.execute("BEGIN").unwrap();
    sess.execute("INSERT INTO t VALUES (1, -5.0)").unwrap(); // transiently negative
    sess.execute("UPDATE t SET bal = 5.0 WHERE id = 1").unwrap();
    sess.execute("COMMIT").unwrap();
    println!("transient violation fixed before commit: accepted (deferred semantics)");
}

// ---------------------------------------------------------------------
// E8: veto → partial rollback vs abort-and-rerun
// ---------------------------------------------------------------------
fn e8_rollback() {
    banner(
        "E8",
        "a vetoed modification is undone by log-driven *partial* rollback; the \
         alternative (abort the whole transaction and rerun) scales with txn size",
    );
    const N: usize = 2000;
    let w = [16, 16, 22];
    println!(
        "{}",
        row(
            &[
                "vetoed ops".into(),
                "partial ms".into(),
                "abort+rerun est ms".into()
            ],
            &w
        )
    );
    for vetoes in [1usize, 10, 100] {
        let db = open_db();
        db.execute_sql("CREATE TABLE t (id INT NOT NULL)").unwrap();
        db.execute_sql("CREATE CONSTRAINT c ON t CHECK (id < 1000000)")
            .unwrap();
        let rd = db.catalog().get_by_name("t").unwrap();
        // one transaction: N good inserts + `vetoes` vetoed ones
        let (clean_time, total) = {
            let txn = db.begin();
            let start = Instant::now();
            for i in 0..N {
                db.insert(&txn, rd.id, Record::new(vec![Value::Int(i as i64)]))
                    .unwrap();
            }
            let clean = start.elapsed();
            for _ in 0..vetoes {
                let err = db
                    .insert(&txn, rd.id, Record::new(vec![Value::Int(2_000_000)]))
                    .unwrap_err();
                assert!(matches!(err, DmxError::Veto { .. }));
            }
            let total = start.elapsed();
            db.commit(&txn).unwrap();
            (clean, total)
        };
        let partial_cost = total - clean_time;
        // abort-and-rerun estimate: each veto would redo the whole txn
        let rerun_est = clean_time * vetoes as u32;
        println!(
            "{}",
            row(&[vetoes.to_string(), ms(partial_cost), ms(rerun_est)], &w)
        );
    }
}

// ---------------------------------------------------------------------
// E9: storage-method comparison
// ---------------------------------------------------------------------
fn e9_storage() {
    banner(
        "E9",
        "alternative storage methods each win their niche (heap loads, B-tree \
         ranges, memory everything-volatile, read-only publishing, foreign gateway)",
    );
    const N: usize = 20_000;
    const PROBES: usize = 1000;
    let w = [10, 12, 14, 12, 14];
    println!(
        "{}",
        row(
            &[
                "method".into(),
                "load ms".into(),
                "probe µs/op".into(),
                "scan ms".into(),
                "range ms".into()
            ],
            &w
        )
    );
    for sm in ["heap", "btree", "memory", "readonly", "foreign"] {
        let db = if sm == "foreign" {
            let reg = dmx_core::ExtensionRegistry::new();
            let foreign = Arc::new(dmx_storage::ForeignStorage::default());
            foreign.register_server("mars");
            reg.register_storage_method(Arc::new(dmx_storage::MemoryStorage::default()))
                .unwrap();
            reg.register_storage_method(Arc::new(dmx_storage::HeapStorage))
                .unwrap();
            reg.register_storage_method(Arc::new(dmx_storage::BTreeStorage))
                .unwrap();
            reg.register_storage_method(Arc::new(dmx_storage::ReadOnlyStorage))
                .unwrap();
            reg.register_storage_method(foreign).unwrap();
            dmx_attach::register_builtin_attachments(&reg).unwrap();
            Database::open_fresh(reg).unwrap()
        } else {
            open_db()
        };
        let using = match sm {
            "btree" => " USING btree WITH (key=id)".to_string(),
            "foreign" => " USING foreign WITH (server=mars)".to_string(),
            "heap" => String::new(),
            other => format!(" USING {other}"),
        };
        db.execute_sql(&format!(
            "CREATE TABLE t (id INT NOT NULL, name STRING NOT NULL){using}"
        ))
        .unwrap();
        let rd = db.catalog().get_by_name("t").unwrap();
        let mut keys = Vec::with_capacity(N);
        let ((), d_load) = time(|| {
            db.with_txn(|txn| {
                for i in 0..N {
                    keys.push(db.insert(
                        txn,
                        rd.id,
                        Record::new(vec![Value::Int(i as i64), Value::Str(format!("v{i}"))]),
                    )?);
                }
                Ok(())
            })
            .unwrap()
        });
        let ((), d_probe) = time(|| {
            db.with_txn(|txn| {
                for p in 0..PROBES {
                    let key = &keys[(p * 7919) % N];
                    db.fetch(txn, rd.id, key, Some(&[0]), None)?.unwrap();
                }
                Ok(())
            })
            .unwrap()
        });
        let ((), d_scan) = time(|| {
            let n = db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0]
                .as_int()
                .unwrap();
            assert_eq!(n, N as i64);
        });
        let ((), d_range) = time(|| {
            let rows = db
                .query_sql(&format!(
                    "SELECT COUNT(*) FROM t WHERE id >= {} AND id < {}",
                    N / 2,
                    N / 2 + 100
                ))
                .unwrap();
            assert_eq!(rows[0][0], Value::Int(100));
        });
        println!(
            "{}",
            row(
                &[
                    sm.into(),
                    ms(d_load),
                    format!("{:.1}", d_probe.as_secs_f64() * 1e6 / PROBES as f64),
                    ms(d_scan),
                    ms(d_range)
                ],
                &w
            )
        );
    }
}

// ---------------------------------------------------------------------
// E10: descriptor cached in the plan vs catalog fetch per execution
// ---------------------------------------------------------------------
fn e10_descriptor() {
    banner(
        "E10",
        "\"fetch the relation descriptors from the system catalogs at query \
         compilation time and store them in the query access plan … eliminates \
         the need to access the catalogs … at run time\"",
    );
    let db = open_db();
    load_emp(
        &db,
        "t",
        1000,
        &["CREATE INDEX a ON {t} (id)", "CREATE INDEX b ON {t} (dept)"],
    )
    .unwrap();
    let rd = db.catalog().get_by_name("t").unwrap();
    const N: usize = 1_000_000;
    // (a) descriptor embedded in the plan: an Arc clone
    let (_, d_embedded) = time(|| {
        let mut acc = 0usize;
        for _ in 0..N {
            let d = std::hint::black_box(&rd).clone();
            acc += d.attachment_count();
        }
        std::hint::black_box(acc)
    });
    // (b) catalog lookup per execution (name hash + map + Arc clone)
    let (_, d_catalog) = time(|| {
        let mut acc = 0usize;
        for _ in 0..N {
            let d = db.catalog().get_by_name(std::hint::black_box("t")).unwrap();
            acc += d.attachment_count();
        }
        std::hint::black_box(acc)
    });
    // (c) catalog lookup + descriptor decode from catalog image bytes (what
    //     a descriptor-less plan would pay against on-disk catalogs)
    let image = rd.encode();
    let (_, d_decode) = time(|| {
        let mut acc = 0usize;
        for _ in 0..N / 100 {
            let d = dmx_core::RelationDescriptor::decode(std::hint::black_box(&image)).unwrap();
            acc += d.attachment_count();
        }
        std::hint::black_box(acc)
    });
    let w = [40, 12];
    println!(
        "{}",
        row(&["descriptor access".into(), "ns/exec".into()], &w)
    );
    println!(
        "{}",
        row(
            &["embedded in bound plan (Arc)".into(), ns_per(d_embedded, N)],
            &w
        )
    );
    println!(
        "{}",
        row(
            &["in-memory catalog lookup".into(), ns_per(d_catalog, N)],
            &w
        )
    );
    println!(
        "{}",
        row(
            &[
                "decode from catalog bytes".into(),
                ns_per(d_decode, N / 100)
            ],
            &w
        )
    );
}

// ---------------------------------------------------------------------
// E11: cascading deletes
// ---------------------------------------------------------------------
fn e11_cascade() {
    banner(
        "E11",
        "cascaded deletes via referential attachments: one parent delete fans \
         out through the dispatcher",
    );
    let w = [10, 12, 14, 16];
    println!(
        "{}",
        row(
            &[
                "fanout".into(),
                "children".into(),
                "delete ms".into(),
                "µs/cascaded row".into()
            ],
            &w
        )
    );
    for fanout in [10usize, 100, 1000] {
        let db = open_db();
        db.execute_sql("CREATE TABLE p (id INT NOT NULL)").unwrap();
        db.execute_sql("CREATE TABLE c (id INT NOT NULL, p INT)")
            .unwrap();
        db.execute_sql(
            "CREATE ATTACHMENT fk ON p USING refint WITH (role=parent, fields=id, other=c, other_fields=p, on_delete=cascade)",
        )
        .unwrap();
        db.execute_sql("INSERT INTO p VALUES (1), (2)").unwrap();
        let c_rd = db.catalog().get_by_name("c").unwrap();
        db.with_txn(|txn| {
            for i in 0..fanout {
                db.insert(
                    txn,
                    c_rd.id,
                    Record::new(vec![Value::Int(i as i64), Value::Int(1)]),
                )?;
            }
            Ok(())
        })
        .unwrap();
        let (_, d) = time(|| db.execute_sql("DELETE FROM p WHERE id = 1").unwrap());
        let left = db.query_sql("SELECT COUNT(*) FROM c").unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(left, 0);
        println!(
            "{}",
            row(
                &[
                    fanout.to_string(),
                    fanout.to_string(),
                    ms(d),
                    format!("{:.1}", d.as_secs_f64() * 1e6 / fanout as f64)
                ],
                &w
            )
        );
    }
}

// ---------------------------------------------------------------------
// E12: concurrency
// ---------------------------------------------------------------------
fn e12_concurrency() {
    banner(
        "E12",
        "lock-based concurrency control with system-wide deadlock detection: \
         serializable transfers under contention",
    );
    let db = open_db();
    db.execute_sql("CREATE TABLE acct (id INT NOT NULL, bal INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX acct_pk ON acct (id)")
        .unwrap();
    const ACCOUNTS: i64 = 16;
    const START: i64 = 1000;
    const PER_THREAD: usize = 50;
    for i in 0..ACCOUNTS {
        db.execute_sql(&format!("INSERT INTO acct VALUES ({i}, {START})"))
            .unwrap();
    }
    let w = [10, 14, 14, 12];
    println!(
        "{}",
        row(
            &[
                "threads".into(),
                "txns/sec".into(),
                "deadlocks".into(),
                "invariant".into()
            ],
            &w
        )
    );
    for threads in [1u64, 2, 4] {
        let deadlocks = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let (_, d) = time(|| {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let db = db.clone();
                    let deadlocks = deadlocks.clone();
                    s.spawn(move || {
                        let sess = Session::new(db);
                        let mut seed = 0x2545F4914F6CDD1Du64.wrapping_mul(t + 1);
                        let mut rng = move || {
                            seed ^= seed << 13;
                            seed ^= seed >> 7;
                            seed ^= seed << 17;
                            seed
                        };
                        let mut done = 0;
                        while done < PER_THREAD {
                            let a = (rng() % ACCOUNTS as u64) as i64;
                            let b = (rng() % ACCOUNTS as u64) as i64;
                            if a == b {
                                continue;
                            }
                            sess.execute("BEGIN").unwrap();
                            let r = sess
                                .execute(&format!("UPDATE acct SET bal = bal - 1 WHERE id = {a}"))
                                .and_then(|_| {
                                    sess.execute(&format!(
                                        "UPDATE acct SET bal = bal + 1 WHERE id = {b}"
                                    ))
                                })
                                .and_then(|_| sess.execute("COMMIT"));
                            match r {
                                Ok(_) => done += 1,
                                Err(_) => {
                                    deadlocks.fetch_add(1, Ordering::Relaxed);
                                    if sess.in_transaction() {
                                        let _ = sess.execute("ROLLBACK");
                                    }
                                }
                            }
                        }
                    });
                }
            });
        });
        let total = db.query_sql("SELECT SUM(bal) FROM acct").unwrap()[0][0]
            .as_int()
            .unwrap();
        let ok = if total == ACCOUNTS * START {
            "holds"
        } else {
            "BROKEN"
        };
        let txns = threads as usize * PER_THREAD;
        println!(
            "{}",
            row(
                &[
                    threads.to_string(),
                    format!("{:.0}", txns as f64 / d.as_secs_f64()),
                    deadlocks.load(Ordering::Relaxed).to_string(),
                    ok.into()
                ],
                &w
            )
        );
    }
}
