//! Shared fixtures for the experiment harness and the Criterion benches.
//!
//! The paper's evaluation is architectural (its figures are diagrams);
//! every experiment here corresponds to an explicit performance claim or
//! design choice, catalogued in DESIGN.md §4 and measured into
//! EXPERIMENTS.md.
//!
//! The bench harness is exempt from the runtime panic discipline (it is
//! not in `xtask`'s runtime-crate set): a failed fixture should abort
//! the experiment loudly, not thread `Result` through every scenario.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod pr10;
pub mod pr3;
pub mod pr5;
pub mod pr7;
pub mod pr8;
pub mod pr9;

use std::sync::Arc;
use std::time::{Duration, Instant};

use dmx_core::{Database, ExtensionRegistry};
use dmx_page::IoSnapshot;
use dmx_query::SqlExt;
use dmx_types::Result;

/// Builds the standard registry (all built-in extensions).
pub fn registry() -> Arc<ExtensionRegistry> {
    let reg = ExtensionRegistry::new();
    dmx_storage::register_builtin_storage(&reg).expect("storage builtins");
    dmx_attach::register_builtin_attachments(&reg).expect("attachment builtins");
    reg
}

/// A fresh in-memory database with all built-in extensions.
pub fn open_db() -> Arc<Database> {
    Database::open_fresh(registry()).expect("open")
}

/// Creates and loads the EMPLOYEE-style relation with `n` rows.
/// Columns: `id INT, name STRING, dept INT, salary FLOAT`.
pub fn load_emp(db: &Arc<Database>, table: &str, n: usize, indexes: &[&str]) -> Result<()> {
    db.execute_sql(&format!(
        "CREATE TABLE {table} (id INT NOT NULL, name STRING NOT NULL, dept INT, salary FLOAT)"
    ))?;
    for spec in indexes {
        db.execute_sql(&spec.replace("{t}", table))?;
    }
    let rd = db.catalog().get_by_name(table)?;
    db.with_txn(|txn| {
        for i in 0..n {
            db.insert(
                txn,
                rd.id,
                dmx_types::Record::new(vec![
                    dmx_types::Value::Int(i as i64),
                    dmx_types::Value::Str(format!("emp{i}")),
                    dmx_types::Value::Int((i % 10) as i64),
                    dmx_types::Value::Float(1000.0 + (i % 100) as f64),
                ]),
            )?;
        }
        Ok(())
    })
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Times a closure and reports the disk I/O delta.
pub fn time_io<T>(db: &Arc<Database>, f: impl FnOnce() -> T) -> (T, Duration, IoSnapshot) {
    let before = db.services().disk.stats().snapshot();
    let start = Instant::now();
    let v = f();
    let d = start.elapsed();
    let after = db.services().disk.stats().snapshot();
    (v, d, after.since(&before))
}

/// Pretty-prints a table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Formats a duration as microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Formats a duration as milliseconds with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Per-op nanoseconds.
pub fn ns_per(d: Duration, ops: usize) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e9 / ops.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let db = open_db();
        load_emp(&db, "e", 50, &["CREATE UNIQUE INDEX e_pk ON {t} (id)"]).unwrap();
        let rows = db.query_sql("SELECT COUNT(*) FROM e").unwrap();
        assert_eq!(rows[0][0], dmx_types::Value::Int(50));
        let (_, d, io) = time_io(&db, || db.query_sql("SELECT * FROM e").unwrap());
        assert!(d.as_nanos() > 0);
        let _ = io;
    }
}
