//! PR10 statistics scenarios: the same skewed query matrix planned
//! twice — once on the planner's built-in guesses (no statistics
//! attachment) and once with maintained statistics after `ANALYZE
//! TABLE` — plus a DML-heavy pair measuring what maintaining those
//! statistics costs. The seeded runs form the `BENCH_pr10.json`
//! baseline.
//!
//! The headline comparison is `bench.misest_p90` between the two
//! misestimate lanes: every query runs under `EXPLAIN ANALYZE`, each
//! base-table access node contributes `|estimated - actual|` rows, and
//! the lane publishes the p90 of those errors. The matrix and data are
//! identical (same seed, same skew), so the delta is purely the
//! estimator's input quality. `scripts/check.sh` ratchets the shrink
//! at 2x or better, requires at least one plan flip
//! (`bench.plan_flips`), and holds the DML lanes' wall-clock overhead
//! at 10 % or less.
//!
//! Determinism contract: all four scenarios are single-threaded and
//! fully seed-driven, so their metric snapshots reproduce
//! byte-identically — [`is_deterministic`] is `true` for the suite.

use std::fmt::Write as _;
use std::time::Instant;

use dmx_query::{Session, SqlExt};
use dmx_types::testrng::TestRng;
use dmx_types::{Record, Value};

use crate::pr3::{Scale, Scenario, ScenarioOutcome, WorkloadResult};

/// The PR10 scenario suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "misestimate_guess",
            claim: "skewed query matrix planned on built-in guesses (no statistics)",
            run: |s, seed| misestimate_lane(s, seed, false),
        },
        Scenario {
            name: "misestimate_stats",
            claim: "the same matrix after ANALYZE TABLE: maintained statistics feed the planner",
            run: |s, seed| misestimate_lane(s, seed, true),
        },
        Scenario {
            name: "dml_overhead_base",
            claim: "DML-heavy stream over a b-tree relation with a secondary index",
            run: |s, seed| dml_lane(s, seed, false),
        },
        Scenario {
            name: "dml_overhead_stats",
            claim: "the same stream with a statistics attachment maintained per modification",
            run: |s, seed| dml_lane(s, seed, true),
        },
    ]
}

/// All four scenarios are single-threaded and seed-driven.
pub fn is_deterministic(_name: &str) -> bool {
    true
}

/// Rows below which the skew workload cannot exercise the estimator:
/// a table this small fits in a page or two, a scan beats any index
/// regardless of selectivity, and no statistics can flip the plan.
const MIN_SKEW_ROWS: usize = 4_000;

/// `EXPLAIN` text of one query (plan shape only, no row counts).
fn plan_text(sess: &Session, q: &str) -> String {
    let r = sess.execute(&format!("EXPLAIN {q}")).expect("explain");
    r.rows
        .iter()
        // Keep only the structural part of each node line: the trailing
        // "(~N rows…)" parenthetical carries the row estimate, which
        // statistics change on every query — a *flip* means the chosen
        // access path changed, not the number printed beside it.
        .map(|row| {
            let line = row[0].as_str().unwrap_or("");
            line.split(" (~").next().unwrap_or(line).to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs one query under `EXPLAIN ANALYZE` and appends the absolute
/// row-estimate error of every base-table access node.
fn misest_errors(sess: &Session, q: &str, errors: &mut Vec<u64>) {
    let r = sess
        .execute(&format!("EXPLAIN ANALYZE {q}"))
        .expect("explain analyze");
    for row in &r.rows {
        let line = row[0].as_str().unwrap_or("");
        if !line.trim_start().starts_with("Access ") {
            continue;
        }
        if let (Value::Int(est), Value::Int(actual)) = (&row[1], &row[2]) {
            errors.push((est - actual).unsigned_abs());
        }
    }
}

fn p90(errors: &mut [u64]) -> u64 {
    if errors.is_empty() {
        return 0;
    }
    errors.sort_unstable();
    errors[((errors.len() * 9) / 10).min(errors.len() - 1)]
}

/// The misestimate workload: `rows` records where ~90 % share one dept
/// and the rest spread over eight more, behind a covering index on
/// `(dept, pay)`. The query matrix mixes equality and range predicates
/// over `dept`; the heavy value is exactly where a global distinct
/// count misleads and only the maintained histogram tells the truth.
/// `with_stats` runs `ANALYZE TABLE` first and counts how many plans
/// the statistics flip.
fn misestimate_lane(scale: &Scale, seed: u64, with_stats: bool) -> WorkloadResult {
    let db = crate::open_db();
    db.execute_sql("CREATE TABLE skew (id INT NOT NULL, dept INT NOT NULL, pay FLOAT NOT NULL)")
        .expect("create table");
    db.execute_sql("CREATE INDEX skew_dept ON skew (dept, pay)")
        .expect("create index");
    let rd = db.catalog().get_by_name("skew").expect("descriptor");
    let rows = scale.rows.max(MIN_SKEW_ROWS);
    let mut rng = TestRng::new(seed);
    for chunk in (0..rows as i64).collect::<Vec<_>>().chunks(256) {
        db.with_txn(|txn| {
            for &i in chunk {
                let dept = if i % 10 == 0 { 1 + (i / 10) % 8 } else { 0 };
                db.insert(
                    txn,
                    rd.id,
                    Record::new(vec![
                        Value::Int(i),
                        Value::Int(dept),
                        Value::Float(1000.0 + rng.below(100) as f64),
                    ]),
                )?;
            }
            Ok(())
        })
        .expect("load");
    }
    let queries: Vec<String> = (0..9)
        .map(|d| format!("SELECT pay FROM skew WHERE dept = {d}"))
        .chain(
            [1i64, 3, 5, 7]
                .iter()
                .map(|k| format!("SELECT pay FROM skew WHERE dept < {k}")),
        )
        .collect();
    let sess = Session::new(db.clone());
    if with_stats {
        let before: Vec<String> = queries.iter().map(|q| plan_text(&sess, q)).collect();
        sess.execute("ANALYZE TABLE skew").expect("analyze");
        let flips = queries
            .iter()
            .zip(&before)
            .filter(|(q, b)| plan_text(&sess, q) != **b)
            .count() as u64;
        assert!(flips >= 1, "statistics must flip at least one plan");
        db.metrics().counter("bench.plan_flips").add(flips);
    }
    let mut errors = Vec::new();
    for q in &queries {
        misest_errors(&sess, q, &mut errors);
    }
    let ops = errors.len() as u64;
    assert!(ops >= queries.len() as u64, "every query must be measured");
    db.metrics()
        .counter("bench.misest_p90")
        .add(p90(&mut errors));
    WorkloadResult {
        ops,
        metrics: db.metrics_snapshot(),
    }
}

/// The DML-heavy workload: a seeded insert/update/delete stream (60/25/15)
/// over a b-tree relation with a secondary index, issued as SQL. The
/// `with_stats` lane adds a statistics attachment before the stream, so
/// every operation also maintains row counts, bounds, sketches and the
/// histogram; the wall-clock delta between the lanes is the maintenance
/// overhead `scripts/check.sh` holds at <= 10 %. Both lanes publish the
/// model's final row count so the smoke gate can prove the attachment
/// never perturbs the workload itself.
fn dml_lane(scale: &Scale, seed: u64, with_stats: bool) -> WorkloadResult {
    let db = crate::open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL) USING btree WITH (key=id)")
        .expect("create table");
    db.execute_sql("CREATE INDEX t_v ON t (v)").expect("index");
    if with_stats {
        db.execute_sql("CREATE ATTACHMENT st ON t USING stats")
            .expect("stats attachment");
    }
    let mut rng = TestRng::new(seed);
    let sess = Session::new(db.clone());
    let mut live: Vec<i64> = Vec::new();
    let mut next_id = 0i64;
    let ops = scale.dml_ops.max(64);
    for _ in 0..ops {
        let roll = rng.below(100);
        if roll < 60 || live.is_empty() {
            let id = next_id;
            next_id += 1;
            let v = rng.below(1000);
            sess.execute(&format!("INSERT INTO t VALUES ({id}, {v})"))
                .expect("insert");
            live.push(id);
        } else if roll < 85 {
            let id = live[rng.index(live.len())];
            let v = rng.below(1000);
            sess.execute(&format!("UPDATE t SET v = {v} WHERE id = {id}"))
                .expect("update");
        } else {
            let at = rng.index(live.len());
            let id = live.swap_remove(at);
            sess.execute(&format!("DELETE FROM t WHERE id = {id}"))
                .expect("delete");
        }
    }
    db.metrics()
        .counter("bench.dml_rows_live")
        .add(live.len() as u64);
    if with_stats {
        let rows = db
            .query_sql("SELECT rows FROM sys.statistics WHERE relation = 't' AND field = '*'")
            .expect("sys.statistics");
        assert_eq!(
            rows[0][0],
            Value::Int(live.len() as i64),
            "maintained row count must track the DML stream exactly"
        );
    }
    WorkloadResult {
        ops: ops as u64,
        metrics: db.metrics_snapshot(),
    }
}

/// Runs every scenario once, timing the deterministic region.
pub fn run_timed(scale: &Scale, seed: u64) -> Vec<ScenarioOutcome> {
    scenarios()
        .into_iter()
        .map(|s| {
            let start = Instant::now();
            let r = (s.run)(scale, seed);
            let elapsed = start.elapsed();
            ScenarioOutcome {
                name: s.name,
                ops: r.ops,
                elapsed,
                metrics: r.metrics,
            }
        })
        .collect()
}

/// Renders the outcomes as the `BENCH_pr10.json` document.
pub fn render_json(outcomes: &[ScenarioOutcome], seed: u64, scale: &Scale) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"pr10-maintained-statistics\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"rows\": {}, \"lookups\": {}, \"scans\": {}, \"dml_ops\": {}}},",
        scale.rows, scale.lookups, scale.scans, scale.dml_ops
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let secs = o.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { o.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"metrics\": {}}}",
            o.name,
            o.ops,
            secs * 1e3,
            per_sec,
            o.metrics.to_json()
        );
        s.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr3::DEFAULT_SEED;

    #[test]
    fn smoke_scale_scenarios_reproduce_and_misestimate_collapses() {
        let scale = Scale::smoke();
        let mut snaps = std::collections::HashMap::new();
        for s in scenarios() {
            let a = (s.run)(&scale, DEFAULT_SEED);
            let b = (s.run)(&scale, DEFAULT_SEED);
            assert_eq!(a.ops, b.ops, "{}: op count drifted", s.name);
            assert_eq!(
                a.metrics, b.metrics,
                "{}: same seed, different snapshot",
                s.name
            );
            snaps.insert(s.name, a.metrics);
        }
        let guess = snaps["misestimate_guess"].counter("bench.misest_p90");
        let stats = snaps["misestimate_stats"].counter("bench.misest_p90");
        assert!(
            stats * 2 <= guess,
            "maintained statistics must halve the p90 misestimate \
             (guess {guess} vs stats {stats})"
        );
        assert!(
            snaps["misestimate_stats"].counter("bench.plan_flips") >= 1,
            "statistics must flip at least one plan"
        );
        assert_eq!(
            snaps["dml_overhead_base"].counter("bench.dml_rows_live"),
            snaps["dml_overhead_stats"].counter("bench.dml_rows_live"),
            "the statistics attachment must not perturb the DML stream"
        );
    }
}
