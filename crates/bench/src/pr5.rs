//! PR5 observability-extension scenarios: the `sys.*` system relations,
//! EXPLAIN ANALYZE and the flight recorder, driven as seeded workloads
//! whose metric snapshots form the `BENCH_pr5.json` baseline.
//!
//! Same determinism contract as [`crate::pr3`]: nothing inside a
//! workload reads a clock, so two runs with the same seed and scale
//! produce byte-identical snapshots. `scripts/check.sh` additionally
//! diffs the metric-name sets of `BENCH_pr3.json` and `BENCH_pr5.json`
//! so no previously-exported metric can silently disappear.

use std::fmt::Write as _;
use std::time::Instant;

use dmx_core::{Database, DatabaseConfig, DatabaseEnv};
use dmx_query::{Session, SqlExt};
use dmx_types::testrng::TestRng;
use dmx_types::{FileId, PageId};

use crate::pr3::{Scale, Scenario, ScenarioOutcome, WorkloadResult};
use crate::registry;

/// The PR5 scenario suite.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "sys_relation_scans",
            claim: "sys.* virtual relations answered through the ordinary SQL path",
            run: sys_relation_scans,
        },
        Scenario {
            name: "explain_analyze",
            claim: "EXPLAIN ANALYZE with per-node counters and misestimate feedback",
            run: explain_analyze,
        },
        Scenario {
            name: "trace_ring_drain",
            claim: "operation-trace ring drained via sys.trace under DML churn",
            run: trace_ring_drain,
        },
        Scenario {
            name: "flight_recorder",
            claim: "quarantine captures a deterministic incident queryable as sys.incidents",
            run: flight_recorder,
        },
    ]
}

/// Scenario 1: repeated predicate/projection scans over the system
/// relations on top of a seeded base table.
fn sys_relation_scans(scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    crate::load_emp(
        &db,
        "t",
        scale.rows,
        &["CREATE UNIQUE INDEX t_pk ON {t} (id)"],
    )
    .expect("load");
    let _ = seed; // the sys snapshot is a pure function of the workload
    let mut rows_out = 0u64;
    for _ in 0..scale.scans {
        for q in [
            "SELECT name, value FROM sys.metrics WHERE kind = 'counter'",
            "SELECT name, records, pages FROM sys.relations",
            "SELECT relation, type, name FROM sys.attachments",
            "SELECT name, bucket, count FROM sys.histograms",
            "SELECT name, mode FROM sys.locks WHERE state = 'held'",
        ] {
            rows_out += db.query_sql(q).expect("sys scan").len() as u64;
        }
    }
    WorkloadResult {
        ops: rows_out,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 2: seeded EXPLAIN ANALYZE statements — full scans with a
/// pushed predicate plus indexed point shapes — each recording
/// estimated-vs-actual into the `planner.misestimate` histogram.
fn explain_analyze(scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    crate::load_emp(
        &db,
        "t",
        scale.rows,
        &["CREATE UNIQUE INDEX t_pk ON {t} (id)"],
    )
    .expect("load");
    let mut rng = TestRng::new(seed);
    let sess = Session::new(db.clone());
    let mut ops = 0u64;
    for _ in 0..scale.scans {
        let dept = rng.range_i64(0, 10);
        let r = sess
            .execute(&format!(
                "EXPLAIN ANALYZE SELECT name FROM t WHERE dept = {dept}"
            ))
            .expect("explain analyze scan");
        assert_eq!(r.columns, vec!["plan", "estimated", "actual"]);
        ops += 1;
    }
    for _ in 0..scale.lookups / 10 {
        let id = rng.range_i64(0, scale.rows as i64);
        let r = sess
            .execute(&format!(
                "EXPLAIN ANALYZE SELECT name FROM t WHERE id = {id}"
            ))
            .expect("explain analyze point");
        assert!(!r.rows.is_empty());
        ops += 1;
    }
    let mis = db
        .query_sql(
            "SELECT value FROM sys.metrics \
             WHERE name = 'planner.misestimate' AND kind = 'histogram_count'",
        )
        .expect("misestimate");
    assert!(
        mis[0][0].as_int().expect("int") >= ops as i64,
        "every analyzed access must feed the misestimate histogram"
    );
    WorkloadResult {
        ops,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 3: a seeded DML mix under referential-integrity attachments
/// (the same shape as pr3's `mixed_dml`) with the trace ring drained
/// through `sys.trace` every few statements; `ops` counts drained rows.
fn trace_ring_drain(scale: &Scale, seed: u64) -> WorkloadResult {
    let db = Database::open_fresh(registry()).expect("open");
    db.execute_sql("CREATE TABLE dept (id INT NOT NULL, name STRING NOT NULL)")
        .expect("dept");
    db.execute_sql("CREATE UNIQUE INDEX dept_pk ON dept (id)")
        .expect("dept_pk");
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .expect("emp");
    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")
        .expect("emp_pk");
    db.execute_sql(
        "CREATE ATTACHMENT fk_c ON emp USING refint \
         WITH (role=child, fields=dept, other=dept, other_fields=id)",
    )
    .expect("fk child");
    db.execute_sql(
        "CREATE ATTACHMENT fk_p ON dept USING refint \
         WITH (role=parent, fields=id, other=emp, other_fields=dept)",
    )
    .expect("fk parent");
    const DEPTS: i64 = 8;
    for d in 0..DEPTS {
        db.execute_sql(&format!("INSERT INTO dept VALUES ({d}, 'd{d}')"))
            .expect("seed dept");
    }
    let mut rng = TestRng::new(seed);
    let sess = Session::new(db.clone());
    let mut drained = 0u64;
    for i in 0..scale.dml_ops {
        let id = i as i64;
        let dept = rng.range_i64(0, DEPTS);
        sess.execute(&format!("INSERT INTO emp VALUES ({id}, 'e{id}', {dept})"))
            .expect("insert");
        if i % 32 == 31 {
            drained += db
                .query_sql("SELECT * FROM sys.trace")
                .expect("drain")
                .len() as u64;
        }
    }
    assert!(drained > 0, "the churn must leave trace events to drain");
    WorkloadResult {
        ops: drained,
        metrics: db.metrics_snapshot(),
    }
}

/// Scenario 4: corruption below the checksum layer quarantines a
/// relation on reopen; the flight recorder's incident is queryable as
/// `sys.incidents`. `ops` counts the incident rows.
fn flight_recorder(scale: &Scale, seed: u64) -> WorkloadResult {
    let env = DatabaseEnv::fresh();
    let db = Database::open(env.clone(), DatabaseConfig::default(), registry()).expect("open");
    crate::load_emp(
        &db,
        "victim",
        (scale.rows / 8).max(8),
        &["CREATE UNIQUE INDEX victim_pk ON {t} (id)"],
    )
    .expect("load");
    let _ = seed; // the corruption point is fixed; determinism is the point
    drop(db);

    // Flip one byte under the checksum (file 1 = catalog, file 2 = the
    // victim heap, in creation order).
    let pid = PageId::new(FileId(2), 0);
    let mut page = dmx_page::Page::new();
    env.disk.read_page(pid, &mut page).expect("read page");
    page.raw_mut()[100] ^= 0x40;
    env.disk.write_page(pid, &page).expect("write page");

    let db = Database::open(env, DatabaseConfig::default(), registry()).expect("reopen");
    db.query_sql("SELECT id FROM victim")
        .expect_err("corrupt relation must be quarantined");
    let report = db.last_incident().expect("incident recorded");
    assert!(!report.reason.is_empty());
    let rows = db
        .query_sql("SELECT * FROM sys.incidents")
        .expect("incidents");
    assert!(!rows.is_empty());
    WorkloadResult {
        ops: rows.len() as u64,
        metrics: db.metrics_snapshot(),
    }
}

/// Runs every scenario once, timing the deterministic region.
pub fn run_timed(scale: &Scale, seed: u64) -> Vec<ScenarioOutcome> {
    scenarios()
        .into_iter()
        .map(|s| {
            let start = Instant::now();
            let r = (s.run)(scale, seed);
            let elapsed = start.elapsed();
            ScenarioOutcome {
                name: s.name,
                ops: r.ops,
                elapsed,
                metrics: r.metrics,
            }
        })
        .collect()
}

/// Renders the outcomes as the `BENCH_pr5.json` document.
pub fn render_json(outcomes: &[ScenarioOutcome], seed: u64, scale: &Scale) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"suite\": \"pr5-observability-extension\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(
        s,
        "  \"scale\": {{\"rows\": {}, \"lookups\": {}, \"scans\": {}, \"dml_ops\": {}}},",
        scale.rows, scale.lookups, scale.scans, scale.dml_ops
    );
    s.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let secs = o.elapsed.as_secs_f64();
        let per_sec = if secs > 0.0 { o.ops as f64 / secs } else { 0.0 };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"metrics\": {}}}",
            o.name,
            o.ops,
            secs * 1e3,
            per_sec,
            o.metrics.to_json()
        );
        s.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_deterministic() {
        let scale = Scale::smoke();
        for s in scenarios() {
            let a = (s.run)(&scale, crate::pr3::DEFAULT_SEED);
            let b = (s.run)(&scale, crate::pr3::DEFAULT_SEED);
            assert_eq!(a.ops, b.ops, "{}: op count drifted", s.name);
            assert_eq!(a.metrics, b.metrics, "{}: snapshot drifted", s.name);
        }
    }
}
