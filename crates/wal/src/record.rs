//! Log record format.
//!
//! Each record carries its transaction, a backward `prev_lsn` chain used
//! by rollback, and a body. Extension operations ([`LogBody::ExtOp`])
//! carry an opaque payload that only the originating extension can
//! interpret — mirroring the paper, where the common recovery facility
//! *drives* storage-method and attachment implementations but does not
//! understand their representations.

use dmx_types::crc::crc32;
use dmx_types::{AttTypeId, DmxError, Lsn, RelationId, Result, SmTypeId, TxnId};

/// Which extension wrote an [`LogBody::ExtOp`] record: the indexes into
/// the two procedure vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtKind {
    Storage(SmTypeId),
    Attachment(AttTypeId),
}

/// Log record bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum LogBody {
    /// Transaction start.
    Begin,
    /// Transaction committed (force point).
    Commit,
    /// Transaction rollback completed.
    Abort,
    /// A named rollback point. Partial rollback stops *after* this LSN.
    Savepoint,
    /// An extension operation. `op` is an extension-private op code;
    /// `payload` is extension-interpreted undo information.
    ExtOp {
        ext: ExtKind,
        relation: RelationId,
        op: u8,
        payload: Vec<u8>,
    },
    /// Compensation record: written after undoing one `ExtOp`. `undo_next`
    /// is the next LSN to undo, so a crashed rollback never undoes twice.
    Clr { undo_next: Lsn },
    /// Intent to perform a deferred physical action at commit (e.g. the
    /// deferred release of a dropped relation's file). Restart recovery
    /// re-drives intents of committed transactions that lack a matching
    /// [`LogBody::DeferredDone`].
    DeferredIntent { payload: Vec<u8> },
    /// Marks a deferred intent completed.
    DeferredDone { intent_lsn: Lsn },
    /// A quiescent checkpoint: every page state described by records at or
    /// before this LSN is durably on disk (the pool was flushed first).
    /// Restart's redo pass starts scanning just past the last checkpoint.
    /// Written with `TxnId(0)` and a null `prev_lsn` — it belongs to no
    /// transaction.
    Checkpoint,
}

/// A complete log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Assigned at append; LSNs are dense and start at 1.
    pub lsn: Lsn,
    /// Previous record of the same transaction ([`Lsn::NULL`] for Begin).
    pub prev_lsn: Lsn,
    pub txn: TxnId,
    pub body: LogBody,
}

const T_BEGIN: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_SAVEPOINT: u8 = 4;
const T_EXTOP_SM: u8 = 5;
const T_EXTOP_ATT: u8 = 6;
const T_CLR: u8 = 7;
const T_INTENT: u8 = 8;
const T_DONE: u8 = 9;
const T_CHECKPOINT: u8 = 10;

impl LogRecord {
    /// Serializes the record to a self-contained byte frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.lsn.0.to_le_bytes());
        out.extend_from_slice(&self.prev_lsn.0.to_le_bytes());
        out.extend_from_slice(&self.txn.0.to_le_bytes());
        match &self.body {
            LogBody::Begin => out.push(T_BEGIN),
            LogBody::Commit => out.push(T_COMMIT),
            LogBody::Abort => out.push(T_ABORT),
            LogBody::Savepoint => out.push(T_SAVEPOINT),
            LogBody::ExtOp {
                ext,
                relation,
                op,
                payload,
            } => {
                let (tag, id) = match ext {
                    ExtKind::Storage(s) => (T_EXTOP_SM, s.0),
                    ExtKind::Attachment(a) => (T_EXTOP_ATT, a.0),
                };
                out.push(tag);
                out.push(id);
                out.extend_from_slice(&relation.0.to_le_bytes());
                out.push(*op);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            LogBody::Clr { undo_next } => {
                out.push(T_CLR);
                out.extend_from_slice(&undo_next.0.to_le_bytes());
            }
            LogBody::DeferredIntent { payload } => {
                out.push(T_INTENT);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            LogBody::DeferredDone { intent_lsn } => {
                out.push(T_DONE);
                out.extend_from_slice(&intent_lsn.0.to_le_bytes());
            }
            LogBody::Checkpoint => out.push(T_CHECKPOINT),
        }
        // Trailing CRC32 over everything above: a torn or rotted frame is
        // detected by decode, which is what lets restart recovery
        // scan-and-truncate a damaged log tail instead of replaying it.
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a frame produced by [`LogRecord::encode`], verifying
    /// its trailing checksum first.
    pub fn decode(buf: &[u8]) -> Result<LogRecord> {
        let corrupt = || DmxError::Corrupt("truncated log record".into());
        let body_len = buf.len().checked_sub(4).ok_or_else(corrupt)?;
        // bounds: body_len + 4 == buf.len() by the checked_sub above
        let (payload, crc_bytes) = (&buf[..body_len], &buf[body_len..]);
        let stored = u32::from_le_bytes(crc_bytes.try_into().map_err(|_| corrupt())?);
        if crc32(payload) != stored {
            return Err(DmxError::Corrupt("log record failed checksum".into()));
        }
        let buf = payload;
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(corrupt)?;
            *pos += n;
            Ok(s)
        };
        let u64at = |pos: &mut usize| -> Result<u64> {
            let b: [u8; 8] = take(pos, 8)?.try_into().map_err(|_| corrupt())?;
            Ok(u64::from_le_bytes(b))
        };
        let u32at = |pos: &mut usize| -> Result<u32> {
            let b: [u8; 4] = take(pos, 4)?.try_into().map_err(|_| corrupt())?;
            Ok(u32::from_le_bytes(b))
        };
        let lsn = Lsn(u64at(&mut pos)?);
        let prev_lsn = Lsn(u64at(&mut pos)?);
        let txn = TxnId(u64at(&mut pos)?);
        let tag = take(&mut pos, 1)?[0];
        let body = match tag {
            T_BEGIN => LogBody::Begin,
            T_COMMIT => LogBody::Commit,
            T_ABORT => LogBody::Abort,
            T_SAVEPOINT => LogBody::Savepoint,
            T_EXTOP_SM | T_EXTOP_ATT => {
                let id = take(&mut pos, 1)?[0];
                let relation = RelationId(u32at(&mut pos)?);
                let op = take(&mut pos, 1)?[0];
                let len = u32at(&mut pos)? as usize;
                let payload = take(&mut pos, len)?.to_vec();
                LogBody::ExtOp {
                    ext: if tag == T_EXTOP_SM {
                        ExtKind::Storage(SmTypeId(id))
                    } else {
                        ExtKind::Attachment(AttTypeId(id))
                    },
                    relation,
                    op,
                    payload,
                }
            }
            T_CLR => LogBody::Clr {
                undo_next: Lsn(u64at(&mut pos)?),
            },
            T_INTENT => {
                let len = u32at(&mut pos)? as usize;
                LogBody::DeferredIntent {
                    payload: take(&mut pos, len)?.to_vec(),
                }
            }
            T_DONE => LogBody::DeferredDone {
                intent_lsn: Lsn(u64at(&mut pos)?),
            },
            T_CHECKPOINT => LogBody::Checkpoint,
            other => return Err(DmxError::Corrupt(format!("bad log tag {other}"))),
        };
        Ok(LogRecord {
            lsn,
            prev_lsn,
            txn,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(body: LogBody) {
        let rec = LogRecord {
            lsn: Lsn(7),
            prev_lsn: Lsn(3),
            txn: TxnId(99),
            body,
        };
        let bytes = rec.encode();
        assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
        // every truncation is detected
        for cut in 0..bytes.len() {
            assert!(LogRecord::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn roundtrip_all_bodies() {
        roundtrip(LogBody::Begin);
        roundtrip(LogBody::Commit);
        roundtrip(LogBody::Abort);
        roundtrip(LogBody::Savepoint);
        roundtrip(LogBody::ExtOp {
            ext: ExtKind::Storage(SmTypeId(2)),
            relation: RelationId(5),
            op: 1,
            payload: vec![1, 2, 3],
        });
        roundtrip(LogBody::ExtOp {
            ext: ExtKind::Attachment(AttTypeId(4)),
            relation: RelationId(5),
            op: 2,
            payload: vec![],
        });
        roundtrip(LogBody::Clr { undo_next: Lsn(2) });
        roundtrip(LogBody::DeferredIntent {
            payload: vec![9; 40],
        });
        roundtrip(LogBody::DeferredDone { intent_lsn: Lsn(4) });
        roundtrip(LogBody::Checkpoint);
    }

    #[test]
    fn any_byte_flip_fails_checksum() {
        let bytes = LogRecord {
            lsn: Lsn(5),
            prev_lsn: Lsn(4),
            txn: TxnId(6),
            body: LogBody::ExtOp {
                ext: ExtKind::Storage(SmTypeId(1)),
                relation: RelationId(2),
                op: 3,
                payload: vec![0xAB; 16],
            },
        }
        .encode();
        for i in 0..bytes.len() {
            let mut rotted = bytes.clone();
            rotted[i] ^= 0x40;
            assert!(
                matches!(LogRecord::decode(&rotted), Err(DmxError::Corrupt(_))),
                "byte flip at {i} undetected"
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut bytes = LogRecord {
            lsn: Lsn(1),
            prev_lsn: Lsn::NULL,
            txn: TxnId(1),
            body: LogBody::Begin,
        }
        .encode();
        bytes[24] = 0xEE;
        assert!(matches!(
            LogRecord::decode(&bytes),
            Err(DmxError::Corrupt(_))
        ));
    }
}
