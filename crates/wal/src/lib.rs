//! Write-ahead logging and the common log-driven recovery facility.
//!
//! The paper's data management extension architecture "relies on the use
//! of a common recovery facility to drive, not only system restart and
//! transaction abort, but also the *partial rollback* of the actions of
//! the transaction": when an attachment vetoes a relation modification,
//! the common recovery log drives the storage method and the
//! already-executed attachments to undo the partial effects.
//!
//! * [`log::LogManager`] assigns LSNs, keeps per-transaction undo chains
//!   (`prev_lsn`), and separates the *durable* prefix ([`log::StableLog`],
//!   which survives a simulated crash) from the volatile tail.
//! * [`record::LogBody::ExtOp`] records carry extension-interpreted undo
//!   payloads; the recovery driver hands them back to the originating
//!   extension through the [`recovery::UndoHandler`] trait (implemented in
//!   `dmx-core` by dispatch through the procedure vectors).
//! * [`recovery`] implements partial rollback to a savepoint, full abort,
//!   and restart recovery (undo losers, complete committed deferred
//!   intents), writing compensation records (CLRs) so rollbacks are
//!   themselves idempotent.

pub mod log;
pub mod record;
pub mod recovery;

pub use log::{LogManager, StableLog};
pub use record::{ExtKind, LogBody, LogRecord};
pub use recovery::{committed_intents, restart, rollback_to, RestartReport, UndoHandler};
