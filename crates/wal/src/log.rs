//! The log manager.
//!
//! [`StableLog`] is the durable portion of the log: like `MemDisk`, it
//! survives a simulated crash (keep the `Arc`, drop everything else).
//! [`LogManager`] owns the volatile tail and the append path; `force`
//! moves the tail into the stable log, and is called by commit and by the
//! buffer pool's write-ahead hook.

use std::sync::Arc;

use dmx_types::sync::Mutex;

use dmx_types::{DmxError, Lsn, Result, TxnId};

use crate::record::{LogBody, LogRecord};

/// The durable prefix of the log. Records are stored encoded, proving the
/// wire format round-trips; a simulated crash keeps this object and drops
/// the [`LogManager`].
#[derive(Default)]
pub struct StableLog {
    frames: Mutex<Vec<Vec<u8>>>,
}

impl StableLog {
    /// An empty stable log.
    pub fn new() -> Arc<Self> {
        Arc::new(StableLog::default())
    }

    /// Number of durable records.
    pub fn len(&self) -> usize {
        self.frames.lock().len()
    }

    /// True when no records are durable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn append(&self, frames: impl IntoIterator<Item = Vec<u8>>) {
        self.frames.lock().extend(frames);
    }

    /// Decodes the durable record with the given LSN (1-based, dense).
    pub fn record(&self, lsn: Lsn) -> Result<LogRecord> {
        let frames = self.frames.lock();
        let idx = (lsn.0 as usize)
            .checked_sub(1)
            .ok_or_else(|| DmxError::InvalidArg("lsn 0".into()))?;
        let frame = frames
            .get(idx)
            .ok_or_else(|| DmxError::NotFound(format!("log record {lsn}")))?;
        LogRecord::decode(frame)
    }

    /// Decodes all durable records in LSN order (restart analysis pass).
    pub fn all(&self) -> Result<Vec<LogRecord>> {
        self.frames
            .lock()
            .iter()
            .map(|f| LogRecord::decode(f))
            .collect()
    }
}

struct Volatile {
    /// Records with lsn > durable watermark, in order.
    tail: Vec<LogRecord>,
    /// Highest LSN assigned.
    next_lsn: u64,
}

/// Assigns LSNs, maintains per-transaction undo chains, and controls
/// durability.
pub struct LogManager {
    stable: Arc<StableLog>,
    vol: Mutex<Volatile>,
}

impl LogManager {
    /// Opens a log manager over a (possibly non-empty) stable log; the
    /// next LSN continues after the durable prefix.
    pub fn open(stable: Arc<StableLog>) -> Self {
        let next_lsn = stable.len() as u64 + 1;
        LogManager {
            stable,
            vol: Mutex::new(Volatile {
                tail: Vec::new(),
                next_lsn,
            }),
        }
    }

    /// The stable log (shared with the crash-surviving environment).
    pub fn stable(&self) -> &Arc<StableLog> {
        &self.stable
    }

    /// Appends a record, returning its LSN. `prev_lsn` must be the
    /// transaction's previous record (its undo chain).
    pub fn append(&self, txn: TxnId, prev_lsn: Lsn, body: LogBody) -> Lsn {
        let mut vol = self.vol.lock();
        let lsn = Lsn(vol.next_lsn);
        vol.next_lsn += 1;
        vol.tail.push(LogRecord {
            lsn,
            prev_lsn,
            txn,
            body,
        });
        lsn
    }

    /// Highest LSN assigned so far ([`Lsn::NULL`] when empty).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.vol.lock().next_lsn - 1)
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.stable.len() as u64)
    }

    /// Makes the log durable up to at least `lsn` (inclusive). Forcing an
    /// already-durable LSN is a no-op.
    pub fn force(&self, lsn: Lsn) -> Result<()> {
        let mut vol = self.vol.lock();
        let durable = self.stable.len() as u64;
        if lsn.0 <= durable {
            return Ok(());
        }
        if lsn.0 >= vol.next_lsn {
            return Err(DmxError::InvalidArg(format!(
                "cannot force unwritten lsn {lsn}"
            )));
        }
        let n = (lsn.0 - durable) as usize;
        let moved: Vec<Vec<u8>> = vol.tail.drain(..n).map(|r| r.encode()).collect();
        self.stable.append(moved);
        Ok(())
    }

    /// Forces everything written so far.
    pub fn force_all(&self) -> Result<()> {
        let last = self.last_lsn();
        if last.is_null() {
            return Ok(());
        }
        self.force(last)
    }

    /// Fetches a record by LSN, whether durable or still volatile.
    pub fn record(&self, lsn: Lsn) -> Result<LogRecord> {
        if lsn.is_null() {
            return Err(DmxError::InvalidArg("null lsn".into()));
        }
        let durable = self.stable.len() as u64;
        if lsn.0 <= durable {
            return self.stable.record(lsn);
        }
        let vol = self.vol.lock();
        let idx = (lsn.0 - durable - 1) as usize;
        vol.tail
            .get(idx)
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("log record {lsn}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExtKind, LogBody};
    use dmx_types::{RelationId, SmTypeId};

    fn ext_op(n: u8) -> LogBody {
        LogBody::ExtOp {
            ext: ExtKind::Storage(SmTypeId(1)),
            relation: RelationId(1),
            op: n,
            payload: vec![n],
        }
    }

    #[test]
    fn lsns_are_dense_and_chained() {
        let log = LogManager::open(StableLog::new());
        let t = TxnId(1);
        let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
        let l2 = log.append(t, l1, ext_op(1));
        let l3 = log.append(t, l2, ext_op(2));
        assert_eq!((l1, l2, l3), (Lsn(1), Lsn(2), Lsn(3)));
        assert_eq!(log.record(l3).unwrap().prev_lsn, l2);
        assert_eq!(log.last_lsn(), Lsn(3));
    }

    #[test]
    fn force_moves_prefix_to_stable() {
        let stable = StableLog::new();
        let log = LogManager::open(stable.clone());
        let t = TxnId(1);
        let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
        let l2 = log.append(t, l1, ext_op(1));
        let l3 = log.append(t, l2, ext_op(2));
        assert_eq!(log.durable_lsn(), Lsn::NULL);
        log.force(l2).unwrap();
        assert_eq!(log.durable_lsn(), l2);
        assert_eq!(stable.len(), 2);
        // records readable from both sides of the watermark
        assert_eq!(log.record(l1).unwrap().body, LogBody::Begin);
        assert_eq!(log.record(l3).unwrap().body, ext_op(2));
        // forcing backwards is a no-op; forcing future lsns errors
        log.force(l1).unwrap();
        assert!(log.force(Lsn(99)).is_err());
        log.force_all().unwrap();
        assert_eq!(log.durable_lsn(), l3);
    }

    #[test]
    fn crash_loses_volatile_tail() {
        let stable = StableLog::new();
        {
            let log = LogManager::open(stable.clone());
            let t = TxnId(1);
            let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
            log.force(l1).unwrap();
            let l2 = log.append(t, l1, ext_op(1));
            let _ = l2; // never forced
        } // crash: LogManager dropped
        assert_eq!(stable.len(), 1);
        let reopened = LogManager::open(stable.clone());
        assert_eq!(reopened.last_lsn(), Lsn(1));
        assert!(reopened.record(Lsn(2)).is_err());
        // new appends continue the sequence after the durable prefix
        let l = reopened.append(TxnId(2), Lsn::NULL, LogBody::Begin);
        assert_eq!(l, Lsn(2));
    }

    #[test]
    fn stable_all_decodes_in_order() {
        let stable = StableLog::new();
        let log = LogManager::open(stable.clone());
        let t = TxnId(3);
        let mut prev = Lsn::NULL;
        for i in 0..5 {
            prev = log.append(t, prev, ext_op(i));
        }
        log.force_all().unwrap();
        let recs = stable.all().unwrap();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.lsn, Lsn(i as u64 + 1));
        }
    }

    #[test]
    fn record_lookup_errors() {
        let log = LogManager::open(StableLog::new());
        assert!(log.record(Lsn::NULL).is_err());
        assert!(log.record(Lsn(1)).is_err());
    }
}
