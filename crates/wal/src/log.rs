//! The log manager.
//!
//! [`StableLog`] is the durable portion of the log: like `MemDisk`, it
//! survives a simulated crash (keep the `Arc`, drop everything else).
//! [`LogManager`] owns the volatile tail and the append path; `force`
//! moves the tail into the stable log one frame at a time (retrying
//! transient faults, so a frame is either fully durable or not appended),
//! and is called by commit and by the buffer pool's write-ahead hook.
//!
//! An optional [`FaultInjector`] gates every frame append and frame read:
//! the stable log shares the injector (and its global I/O counter) with
//! the fault-wrapped disk, so one seeded plan can crash, tear or corrupt
//! any I/O in the system — page or log — by index.

use std::collections::VecDeque;
use std::sync::Arc;

use dmx_types::sync::Mutex;

use dmx_types::fault::{with_io_retries, MAX_IO_RETRIES};
use dmx_types::obs::{name, Counter, Histogram, MetricsRegistry, ObsEvent, SIZE_BUCKETS};
use dmx_types::{DmxError, FaultDecision, FaultInjector, Lsn, Result, TxnId};

use crate::record::{LogBody, LogRecord};

/// The durable prefix of the log. Records are stored encoded, proving the
/// wire format round-trips; a simulated crash keeps this object and drops
/// the [`LogManager`].
#[derive(Default)]
pub struct StableLog {
    frames: Mutex<Vec<Vec<u8>>>,
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

impl StableLog {
    /// An empty stable log with no fault injection.
    pub fn new() -> Arc<Self> {
        Arc::new(StableLog::default())
    }

    /// An empty stable log whose every frame I/O consults `injector`.
    /// Share the injector with the fault-wrapped disk so both draw from
    /// one global I/O sequence.
    pub fn with_injector(injector: Arc<FaultInjector>) -> Arc<Self> {
        let log = StableLog::default();
        *log.injector.lock() = Some(injector);
        Arc::new(log)
    }

    /// Installs or removes the fault injector. The crash-sweep harness
    /// uses this at "reopen": the same surviving `StableLog` gets a fresh
    /// (or no) injector for the recovery run.
    pub fn set_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.lock() = injector;
    }

    /// Number of durable records.
    pub fn len(&self) -> usize {
        self.frames.lock().len()
    }

    /// True when no records are durable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a single encoded frame, consulting the injector: the frame
    /// is either appended whole, appended torn (prefix only, then the
    /// injector reports a crash), corrupted in place, or not appended at
    /// all — exactly the outcomes a real log device exhibits.
    pub fn append_frame(&self, mut frame: Vec<u8>) -> Result<()> {
        let decision = match self.injector.lock().as_ref() {
            Some(inj) => inj.decide(true),
            None => FaultDecision::Proceed,
        };
        match decision {
            FaultDecision::Proceed => {
                self.frames.lock().push(frame);
                Ok(())
            }
            FaultDecision::FlipByte { raw } => {
                if let Some((off, bit)) = FaultDecision::flip_target(raw, frame.len()) {
                    // bounds: flip_target reduces off modulo frame.len()
                    frame[off] ^= bit;
                }
                self.frames.lock().push(frame);
                Ok(())
            }
            FaultDecision::Torn { raw } => {
                let keep = (raw as usize) % (frame.len() + 1);
                frame.truncate(keep);
                self.frames.lock().push(frame);
                match FaultInjector::error_for(decision, "log append") {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            other => match FaultInjector::error_for(other, "log append") {
                Some(e) => Err(e),
                None => {
                    self.frames.lock().push(frame);
                    Ok(())
                }
            },
        }
    }

    /// Runs `f` over the raw bytes of frame `idx` (0-based) without
    /// cloning them. Reads consult the injector like any other I/O.
    pub fn with_frame<R>(&self, idx: usize, f: impl FnOnce(&[u8]) -> Result<R>) -> Result<R> {
        let decision = match self.injector.lock().as_ref() {
            Some(inj) => inj.decide(false),
            None => FaultDecision::Proceed,
        };
        if let Some(e) = FaultInjector::error_for(decision, "log read") {
            return Err(e);
        }
        let frames = self.frames.lock();
        let frame = frames
            .get(idx)
            .ok_or_else(|| DmxError::NotFound(format!("log frame {idx}")))?;
        f(frame)
    }

    /// Discards every frame at index `idx` and beyond (restart's
    /// scan-and-truncate of a torn tail).
    pub fn truncate_from(&self, idx: usize) {
        self.frames.lock().truncate(idx);
    }

    /// Decodes the durable record with the given LSN (1-based, dense).
    /// Retries transient read faults so rollback and record lookups never
    /// surface [`DmxError::IoTransient`].
    pub fn record(&self, lsn: Lsn) -> Result<LogRecord> {
        let idx = (lsn.0 as usize)
            .checked_sub(1)
            .ok_or_else(|| DmxError::InvalidArg("lsn 0".into()))?;
        with_io_retries(MAX_IO_RETRIES, || self.with_frame(idx, LogRecord::decode)).map_err(|e| {
            match e {
                DmxError::NotFound(_) => DmxError::NotFound(format!("log record {lsn}")),
                other => other,
            }
        })
    }

    /// Decodes all durable records in LSN order. Test/diagnostic
    /// convenience: the restart path streams frames individually through
    /// [`StableLog::with_frame`] instead of materializing this clone.
    pub fn all(&self) -> Result<Vec<LogRecord>> {
        self.frames
            .lock()
            .iter()
            .map(|f| LogRecord::decode(f))
            .collect()
    }
}

struct Volatile {
    /// Records with lsn > durable watermark, in order.
    tail: VecDeque<LogRecord>,
    /// Highest LSN assigned.
    next_lsn: u64,
}

/// Assigns LSNs, maintains per-transaction undo chains, and controls
/// durability.
pub struct LogManager {
    stable: Arc<StableLog>,
    vol: Mutex<Volatile>,
    /// Serializes flushers. Held only while moving frames to the stable
    /// log — never during appends, which need only `vol` — so concurrent
    /// committers queue here while a batch leader writes, and most find
    /// their LSN already durable when they acquire it (group commit).
    flush: Mutex<()>,
    obs: Arc<MetricsRegistry>,
    appends: Arc<Counter>,
    forces: Arc<Counter>,
    frames_forced: Arc<Counter>,
    force_batch: Arc<Histogram>,
}

impl LogManager {
    /// Opens a log manager over a (possibly non-empty) stable log with a
    /// private metrics registry; the next LSN continues after the durable
    /// prefix.
    pub fn open(stable: Arc<StableLog>) -> Self {
        Self::open_with_metrics(stable, MetricsRegistry::new())
    }

    /// Opens a log manager registering its metrics in `obs`.
    pub fn open_with_metrics(stable: Arc<StableLog>, obs: Arc<MetricsRegistry>) -> Self {
        let next_lsn = stable.len() as u64 + 1;
        let appends = obs.counter(name::WAL_APPENDS);
        let forces = obs.counter(name::WAL_FORCES);
        let frames_forced = obs.counter(name::WAL_FRAMES_FORCED);
        let force_batch = obs.histogram(name::WAL_FORCE_BATCH, SIZE_BUCKETS);
        LogManager {
            stable,
            vol: Mutex::new(Volatile {
                tail: VecDeque::new(),
                next_lsn,
            }),
            flush: Mutex::new(()),
            obs,
            appends,
            forces,
            frames_forced,
            force_batch,
        }
    }

    /// The stable log (shared with the crash-surviving environment).
    pub fn stable(&self) -> &Arc<StableLog> {
        &self.stable
    }

    /// Appends a record, returning its LSN. `prev_lsn` must be the
    /// transaction's previous record (its undo chain).
    pub fn append(&self, txn: TxnId, prev_lsn: Lsn, body: LogBody) -> Lsn {
        let mut vol = self.vol.lock();
        let lsn = Lsn(vol.next_lsn);
        vol.next_lsn += 1;
        vol.tail.push_back(LogRecord {
            lsn,
            prev_lsn,
            txn,
            body,
        });
        drop(vol);
        self.appends.incr();
        lsn
    }

    /// Highest LSN assigned so far ([`Lsn::NULL`] when empty).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.vol.lock().next_lsn - 1)
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.stable.len() as u64)
    }

    /// Makes the log durable up to at least `lsn` (inclusive). Forcing an
    /// already-durable LSN is a no-op. Frames move one at a time with a
    /// bounded retry on transient faults, and a frame leaves the volatile
    /// tail only once durably appended — a mid-force crash leaves a clean
    /// durable prefix plus (at worst) one torn frame for restart's
    /// scan-and-truncate to remove.
    pub fn force(&self, lsn: Lsn) -> Result<()> {
        self.force_upto(lsn, false)
    }

    /// Group-commit force: makes `lsn` durable and, while it holds the
    /// flush lock anyway, flushes the *entire* volatile tail. Concurrent
    /// committers queue on the flush lock while a batch leader writes;
    /// because the leader also carried their (already-appended) commit
    /// records, they find their LSN durable on acquire and return without
    /// doing any I/O of their own — one force serves many commits, which
    /// is what the `wal.force_batch` histogram measures.
    pub fn force_group(&self, lsn: Lsn) -> Result<()> {
        self.force_upto(lsn, true)
    }

    fn force_upto(&self, lsn: Lsn, to_end: bool) -> Result<()> {
        // Fast path, no locks: already durable (stable only grows).
        if lsn.0 <= self.stable.len() as u64 {
            return Ok(());
        }
        if to_end {
            // Group-commit window: step aside once so other ready
            // committers can append their commit records before anyone
            // snapshots the tail — then one stable write carries the
            // whole batch and the rest free-ride. Without this, commits
            // short enough to fit inside a scheduler quantum never
            // overlap at the flush lock (most visible on a single core)
            // and every commit pays its own force. With no other
            // runnable thread the yield returns immediately.
            std::thread::yield_now();
            if lsn.0 <= self.stable.len() as u64 {
                return Ok(()); // someone's batch carried us while we yielded
            }
        }
        let _flush = self.flush.lock();
        // Snapshot the frames to write under the volatile lock, then
        // release it so appenders are never blocked behind log I/O —
        // that release is what lets a batch accumulate while we write.
        let frames: Vec<Vec<u8>> = {
            let vol = self.vol.lock();
            let durable = self.stable.len() as u64;
            if lsn.0 <= durable {
                // The previous flush-lock holder's batch covered us: the
                // group-commit free ride (no force of our own).
                return Ok(());
            }
            if lsn.0 >= vol.next_lsn {
                return Err(DmxError::InvalidArg(format!(
                    "cannot force unwritten lsn {lsn}"
                )));
            }
            let end = if to_end { vol.next_lsn - 1 } else { lsn.0 };
            let n = (end - durable) as usize;
            if vol.tail.len() < n {
                return Err(DmxError::Internal(
                    "volatile tail shorter than force target".into(),
                ));
            }
            vol.tail.iter().take(n).map(|rec| rec.encode()).collect()
        };
        self.forces.incr();
        let n = frames.len();
        let mut moved = 0usize;
        let mut failed = None;
        for frame in frames {
            match with_io_retries(MAX_IO_RETRIES, || self.stable.append_frame(frame.clone())) {
                Ok(()) => moved += 1,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        // Only durably-appended frames leave the tail; on failure the
        // clean prefix is still counted.
        {
            let mut vol = self.vol.lock();
            for _ in 0..moved {
                vol.tail.pop_front();
            }
        }
        self.frames_forced.add(moved as u64);
        self.force_batch.record(moved as u64);
        if let Some(e) = failed {
            return Err(e);
        }
        self.obs.emit(ObsEvent {
            layer: "wal",
            op: "force",
            target: lsn.0,
            detail: n as u64,
        });
        Ok(())
    }

    /// Forces everything written so far.
    pub fn force_all(&self) -> Result<()> {
        let last = self.last_lsn();
        if last.is_null() {
            return Ok(());
        }
        self.force(last)
    }

    /// Restart's first step: walk the durable frames in order and drop the
    /// tail from the first frame that fails to decode (torn or rotted) or
    /// whose LSN breaks the dense sequence, then resync the LSN counter.
    /// Returns the number of frames truncated. Must run before analysis
    /// and before any new appends.
    pub fn scan_and_truncate_tail(&self) -> Result<usize> {
        let mut vol = self.vol.lock();
        debug_assert!(
            vol.tail.is_empty(),
            "tail scan must run at restart, before new appends"
        );
        let n = self.stable.len();
        let mut valid = 0usize;
        while valid < n {
            let res = with_io_retries(MAX_IO_RETRIES, || {
                self.stable.with_frame(valid, LogRecord::decode)
            });
            match res {
                Ok(rec) if rec.lsn.0 == valid as u64 + 1 => valid += 1,
                Ok(_) | Err(DmxError::Corrupt(_)) => break,
                Err(e) => return Err(e),
            }
        }
        let dropped = n - valid;
        if dropped > 0 {
            self.stable.truncate_from(valid);
        }
        vol.next_lsn = valid as u64 + 1;
        Ok(dropped)
    }

    /// Fetches a record by LSN, whether durable or still volatile.
    pub fn record(&self, lsn: Lsn) -> Result<LogRecord> {
        if lsn.is_null() {
            return Err(DmxError::InvalidArg("null lsn".into()));
        }
        // Check the volatile tail first, indexing by its front LSN: while
        // a flush is mid-batch a frame can be in both the stable log and
        // the tail, so indexing the tail relative to `stable.len()` would
        // be off by the not-yet-popped prefix.
        {
            let vol = self.vol.lock();
            if let Some(front) = vol.tail.front() {
                if lsn >= front.lsn {
                    let idx = (lsn.0 - front.lsn.0) as usize;
                    return vol
                        .tail
                        .get(idx)
                        .cloned()
                        .ok_or_else(|| DmxError::NotFound(format!("log record {lsn}")));
                }
            }
        }
        self.stable.record(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ExtKind, LogBody};
    use dmx_types::{FaultPlan, RelationId, SmTypeId};

    fn ext_op(n: u8) -> LogBody {
        LogBody::ExtOp {
            ext: ExtKind::Storage(SmTypeId(1)),
            relation: RelationId(1),
            op: n,
            payload: vec![n],
        }
    }

    #[test]
    fn lsns_are_dense_and_chained() {
        let log = LogManager::open(StableLog::new());
        let t = TxnId(1);
        let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
        let l2 = log.append(t, l1, ext_op(1));
        let l3 = log.append(t, l2, ext_op(2));
        assert_eq!((l1, l2, l3), (Lsn(1), Lsn(2), Lsn(3)));
        assert_eq!(log.record(l3).unwrap().prev_lsn, l2);
        assert_eq!(log.last_lsn(), Lsn(3));
    }

    #[test]
    fn force_moves_prefix_to_stable() {
        let stable = StableLog::new();
        let log = LogManager::open(stable.clone());
        let t = TxnId(1);
        let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
        let l2 = log.append(t, l1, ext_op(1));
        let l3 = log.append(t, l2, ext_op(2));
        assert_eq!(log.durable_lsn(), Lsn::NULL);
        log.force(l2).unwrap();
        assert_eq!(log.durable_lsn(), l2);
        assert_eq!(stable.len(), 2);
        // records readable from both sides of the watermark
        assert_eq!(log.record(l1).unwrap().body, LogBody::Begin);
        assert_eq!(log.record(l3).unwrap().body, ext_op(2));
        // forcing backwards is a no-op; forcing future lsns errors
        log.force(l1).unwrap();
        assert!(log.force(Lsn(99)).is_err());
        log.force_all().unwrap();
        assert_eq!(log.durable_lsn(), l3);
    }

    #[test]
    fn crash_loses_volatile_tail() {
        let stable = StableLog::new();
        {
            let log = LogManager::open(stable.clone());
            let t = TxnId(1);
            let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
            log.force(l1).unwrap();
            let l2 = log.append(t, l1, ext_op(1));
            let _ = l2; // never forced
        } // crash: LogManager dropped
        assert_eq!(stable.len(), 1);
        let reopened = LogManager::open(stable.clone());
        assert_eq!(reopened.last_lsn(), Lsn(1));
        assert!(reopened.record(Lsn(2)).is_err());
        // new appends continue the sequence after the durable prefix
        let l = reopened.append(TxnId(2), Lsn::NULL, LogBody::Begin);
        assert_eq!(l, Lsn(2));
    }

    #[test]
    fn stable_all_decodes_in_order() {
        let stable = StableLog::new();
        let log = LogManager::open(stable.clone());
        let t = TxnId(3);
        let mut prev = Lsn::NULL;
        for i in 0..5 {
            prev = log.append(t, prev, ext_op(i));
        }
        log.force_all().unwrap();
        let recs = stable.all().unwrap();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.lsn, Lsn(i as u64 + 1));
        }
    }

    #[test]
    fn with_frame_reads_without_clone() {
        let stable = StableLog::new();
        let log = LogManager::open(stable.clone());
        let l1 = log.append(TxnId(1), Lsn::NULL, LogBody::Begin);
        log.force(l1).unwrap();
        let rec = stable.with_frame(0, LogRecord::decode).unwrap();
        assert_eq!(rec.lsn, l1);
        assert!(stable.with_frame(1, LogRecord::decode).is_err());
    }

    #[test]
    fn record_lookup_errors() {
        let log = LogManager::open(StableLog::new());
        assert!(log.record(Lsn::NULL).is_err());
        assert!(log.record(Lsn(1)).is_err());
    }

    #[test]
    fn force_retries_transient_append() {
        // I/O 0 is a transient failure: the first frame append fails once,
        // the force-level retry succeeds, and nothing is lost or doubled.
        let inj = FaultInjector::new(FaultPlan::new(9).transient_at(0));
        let stable = StableLog::with_injector(inj.clone());
        let log = LogManager::open(stable.clone());
        let t = TxnId(1);
        let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
        let l2 = log.append(t, l1, ext_op(1));
        log.force(l2).unwrap();
        assert_eq!(stable.len(), 2);
        assert_eq!(inj.injected(), 1);
        let recs = stable.all().unwrap();
        assert_eq!(recs[0].lsn, l1);
        assert_eq!(recs[1].lsn, l2);
    }

    #[test]
    fn torn_append_leaves_undecodable_tail() {
        let inj = FaultInjector::new(FaultPlan::new(3).torn_at(1));
        let stable = StableLog::with_injector(inj.clone());
        let log = LogManager::open(stable.clone());
        let t = TxnId(1);
        let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
        let l2 = log.append(t, l1, ext_op(1));
        // io 0 appends l1; io 1 tears l2 and crashes
        let err = log.force(l2).unwrap_err();
        assert!(matches!(err, DmxError::Io(_)));
        assert!(inj.is_crashed());
        inj.clear();
        // the tail scan drops at most the torn frame (a tear that kept
        // every byte is a completed write and survives)
        let reopened = LogManager::open(stable.clone());
        let dropped = reopened.scan_and_truncate_tail().unwrap();
        assert!(dropped <= 1, "at most the torn frame is lost");
        let survived = 2 - dropped;
        assert_eq!(stable.len(), survived);
        assert_eq!(reopened.last_lsn(), Lsn(survived as u64));
        // appends continue cleanly after truncation
        let l = reopened.append(TxnId(2), Lsn::NULL, LogBody::Begin);
        assert_eq!(l, Lsn(survived as u64 + 1));
        reopened.force_all().unwrap();
        assert_eq!(stable.len(), survived + 1);
    }

    #[test]
    fn scan_truncates_flipped_tail_record() {
        let inj = FaultInjector::new(FaultPlan::new(4).flip_at(2));
        let stable = StableLog::with_injector(inj);
        let log = LogManager::open(stable.clone());
        let t = TxnId(1);
        let mut prev = Lsn::NULL;
        for i in 0..3 {
            prev = log.append(t, prev, ext_op(i));
        }
        log.force_all().unwrap(); // io 2 (third frame) is flipped
        assert_eq!(stable.len(), 3);
        let reopened = LogManager::open(stable.clone());
        let dropped = reopened.scan_and_truncate_tail().unwrap();
        assert_eq!(dropped, 1, "only the rotted frame is dropped");
        assert_eq!(stable.len(), 2);
        assert_eq!(reopened.last_lsn(), Lsn(2));
    }

    #[test]
    fn scan_on_clean_log_drops_nothing() {
        let stable = StableLog::new();
        let log = LogManager::open(stable.clone());
        let mut prev = Lsn::NULL;
        for i in 0..4 {
            prev = log.append(TxnId(1), prev, ext_op(i));
        }
        log.force_all().unwrap();
        let reopened = LogManager::open(stable.clone());
        assert_eq!(reopened.scan_and_truncate_tail().unwrap(), 0);
        assert_eq!(stable.len(), 4);
    }
}
