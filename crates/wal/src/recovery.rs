//! The log-driven recovery driver.
//!
//! One driver serves all three uses the paper names: *partial rollback*
//! (vetoed relation modifications, application savepoints), *transaction
//! abort*, and *system restart*. The driver walks a transaction's undo
//! chain backwards and hands each extension-operation record to the
//! [`UndoHandler`] (implemented in `dmx-core` by dispatching through the
//! storage-method / attachment procedure vectors). Compensation records
//! (CLRs) make interrupted rollbacks idempotent.
//!
//! Undo operations must themselves be idempotent because, under the
//! no-steal/force policy, a loser transaction's page changes may never
//! have reached disk: heap undo checks page LSNs, logical index undo
//! checks key presence.

use std::collections::{HashMap, HashSet};

use dmx_types::fault::{with_io_retries, MAX_IO_RETRIES};
use dmx_types::{Lsn, Result, TxnId};

use crate::log::LogManager;
use crate::record::{LogBody, LogRecord};

/// Callback surface the recovery driver uses to reach extensions.
pub trait UndoHandler {
    /// Undoes one extension operation (an [`LogBody::ExtOp`] record). Must
    /// be idempotent.
    fn undo(&self, rec: &LogRecord) -> Result<()>;

    /// Re-applies one committed extension operation (an
    /// [`LogBody::ExtOp`] record) during restart's redo pass. Under the
    /// steal/no-force policy a committed operation's pages may never have
    /// reached disk, so restart replays the durable log forward. Must be
    /// idempotent: the operation may already be (partially) on disk.
    fn redo(&self, rec: &LogRecord) -> Result<()>;

    /// Completes a committed transaction's deferred intent during restart
    /// (e.g. physically releasing a dropped relation's file). Must be
    /// idempotent.
    fn redo_deferred(&self, rec: &LogRecord) -> Result<()>;
}

/// Rolls a transaction back to a rollback point: undoes every operation
/// with `lsn > stop_after`, writing a CLR per undone operation.
///
/// `from_lsn` is the transaction's current last LSN; the new last LSN
/// (the final CLR, or `from_lsn` when nothing needed undoing) is returned.
/// Passing `stop_after = Lsn::NULL` performs a full rollback.
pub fn rollback_to(
    log: &LogManager,
    handler: &dyn UndoHandler,
    txn: TxnId,
    from_lsn: Lsn,
    stop_after: Lsn,
) -> Result<Lsn> {
    let mut cur = from_lsn;
    let mut last = from_lsn;
    while !cur.is_null() && cur > stop_after {
        let rec = log.record(cur)?;
        debug_assert_eq!(rec.txn, txn, "undo chain crossed transactions");
        match &rec.body {
            LogBody::ExtOp { .. } => {
                handler.undo(&rec)?;
                last = log.append(
                    txn,
                    last,
                    LogBody::Clr {
                        undo_next: rec.prev_lsn,
                    },
                );
                cur = rec.prev_lsn;
            }
            // A CLR means everything from here back to its undo_next was
            // already undone by an earlier (interrupted) rollback.
            LogBody::Clr { undo_next } => cur = *undo_next,
            _ => cur = rec.prev_lsn,
        }
    }
    Ok(last)
}

/// What restart recovery did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Loser transactions that were rolled back.
    pub losers: Vec<TxnId>,
    /// Deferred intents of committed transactions that were (re-)executed.
    pub intents_redone: usize,
    /// Committed extension operations replayed by the redo pass.
    pub ops_redone: usize,
    /// The last durable [`LogBody::Checkpoint`] record ([`Lsn::NULL`] when
    /// none): the point the redo scan started from. The database compares
    /// this against the log end to decide whether opening quiescently
    /// needs to write a fresh checkpoint.
    pub last_checkpoint: Lsn,
    /// Torn/corrupt frames truncated from the durable log tail before
    /// analysis.
    pub tail_truncated: usize,
    /// Highest transaction id seen in the durable log (0 when empty); the
    /// database uses this to restart its transaction-id sequence without
    /// a second log scan.
    pub max_txn: u64,
}

/// What one streaming pass over the durable log establishes: transaction
/// outcomes, deferred-intent status, and how much torn tail was dropped.
struct Analysis {
    /// Loser transactions mapped to their last durable LSN.
    active: HashMap<TxnId, Lsn>,
    /// Transactions with a durable commit record.
    committed: HashSet<TxnId>,
    /// Committed transactions mapped to their commit record's `prev_lsn`
    /// (the head of their final undo chain): the redo pass walks this
    /// chain to find the net-applied operations.
    committed_chain: HashMap<TxnId, Lsn>,
    /// LSN of the last checkpoint record ([`Lsn::NULL`] when none).
    checkpoint: Lsn,
    /// All deferred-intent records, in log order.
    intents: Vec<LogRecord>,
    /// Intent LSNs with a durable completion record.
    done: HashSet<Lsn>,
    /// Highest transaction id seen.
    max_txn: u64,
    /// Frames dropped by the tail scan.
    tail_truncated: usize,
}

/// Truncates the torn/corrupt log tail, then streams the durable frames
/// once (no whole-log clone), classifying transactions and deferred
/// intents. Frame reads retry transient faults like every other I/O path,
/// so `DmxError::IoTransient` never escapes restart.
fn analyze(log: &LogManager) -> Result<Analysis> {
    // A crash mid-force can leave one torn frame; rot can corrupt any
    // frame. Nothing past the first bad frame is trustworthy (LSN chains
    // would dangle), so the tail is dropped.
    let tail_truncated = log.scan_and_truncate_tail()?;

    let mut active: HashMap<TxnId, Lsn> = HashMap::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut committed_chain: HashMap<TxnId, Lsn> = HashMap::new();
    let mut checkpoint = Lsn::NULL;
    let mut intents: Vec<LogRecord> = Vec::new();
    let mut done: HashSet<Lsn> = HashSet::new();
    let mut max_txn = 0u64;
    let stable = log.stable();
    for idx in 0..stable.len() {
        let rec = with_io_retries(MAX_IO_RETRIES, || stable.with_frame(idx, LogRecord::decode))?;
        if rec.txn.0 > max_txn {
            max_txn = rec.txn.0;
        }
        match &rec.body {
            LogBody::Begin => {
                active.insert(rec.txn, rec.lsn);
            }
            LogBody::Commit => {
                active.remove(&rec.txn);
                committed.insert(rec.txn);
                committed_chain.insert(rec.txn, rec.prev_lsn);
            }
            LogBody::Checkpoint => {
                checkpoint = rec.lsn;
            }
            LogBody::Abort => {
                active.remove(&rec.txn);
            }
            LogBody::DeferredIntent { .. } => {
                intents.push(rec.clone());
                if let Some(last) = active.get_mut(&rec.txn) {
                    *last = rec.lsn;
                }
            }
            LogBody::DeferredDone { intent_lsn } => {
                done.insert(*intent_lsn);
            }
            _ => {
                if let Some(last) = active.get_mut(&rec.txn) {
                    *last = rec.lsn;
                }
            }
        }
    }
    Ok(Analysis {
        active,
        committed,
        committed_chain,
        checkpoint,
        intents,
        done,
        max_txn,
        tail_truncated,
    })
}

/// The committed transactions' deferred-intent records in the durable
/// log, each paired with whether its completion (`DeferredDone`) is also
/// durable. Intents whose flag is `false` are exactly the set
/// [`restart`] will re-drive.
///
/// Runs the same tail truncation and analysis pass as [`restart`] (both
/// are idempotent), so a caller can decide *before* recovery appends
/// anything to the log whether a damaged side structure — e.g. the
/// catalog image — can still be reconstructed from a pending intent.
pub fn committed_intents(log: &LogManager) -> Result<Vec<(LogRecord, bool)>> {
    let a = analyze(log)?;
    Ok(a.intents
        .into_iter()
        .filter(|rec| a.committed.contains(&rec.txn))
        .map(|rec| {
            let done = a.done.contains(&rec.lsn);
            (rec, done)
        })
        .collect())
}

/// System restart recovery (ARIES-shaped): truncates a torn/corrupt log
/// tail, analyzes the durable log, completes committed transactions'
/// outstanding deferred intents, **redoes** committed extension
/// operations forward from the last checkpoint (under steal/no-force a
/// winner's pages may never have reached disk), and undoes loser
/// transactions. Forces the log before returning.
pub fn restart(log: &LogManager, handler: &dyn UndoHandler) -> Result<RestartReport> {
    let Analysis {
        active,
        committed,
        committed_chain,
        checkpoint,
        intents,
        done,
        max_txn,
        tail_truncated,
    } = analyze(log)?;

    // --- redo committed deferred intents ---
    // Before the op redo pass: a pending catalog-image intent is what
    // makes a committed CREATE's relation visible to redo dispatch.
    let mut intents_redone = 0;
    for intent in &intents {
        if committed.contains(&intent.txn) && !done.contains(&intent.lsn) {
            handler.redo_deferred(intent)?;
            log.append(
                intent.txn,
                Lsn::NULL,
                LogBody::DeferredDone {
                    intent_lsn: intent.lsn,
                },
            );
            intents_redone += 1;
        }
    }

    // --- redo committed extension ops, net of compensation ---
    // A committed transaction can contain CLRs (savepoint or vetoed-
    // statement rollback before commit), and a CLR carries no redo
    // information of its own. Walking the *final* undo chain backward
    // from the commit record visits exactly the net-applied ExtOps: a
    // CLR's undo_next jump skips everything it compensated. Replaying
    // only that set, in forward log order, reproduces the committed
    // state. The walk stops at the checkpoint: a transaction never spans
    // a checkpoint (checkpoints are written at quiescent open), so every
    // pre-checkpoint effect is already durably on disk.
    let mut redo_set: HashSet<Lsn> = HashSet::new();
    for head in committed_chain.values() {
        let mut cur = *head;
        while !cur.is_null() && cur > checkpoint {
            let rec = log.record(cur)?;
            match &rec.body {
                LogBody::ExtOp { .. } => {
                    redo_set.insert(cur);
                    cur = rec.prev_lsn;
                }
                LogBody::Clr { undo_next } => cur = *undo_next,
                _ => cur = rec.prev_lsn,
            }
        }
    }
    let mut ops_redone = 0;
    if !redo_set.is_empty() {
        let stable = log.stable();
        // LSNs are dense and 1-based: frame idx holds LSN idx+1, so the
        // scan starts at the frame just past the checkpoint record.
        for idx in (checkpoint.0 as usize)..stable.len() {
            if !redo_set.contains(&Lsn(idx as u64 + 1)) {
                continue;
            }
            let rec =
                with_io_retries(MAX_IO_RETRIES, || stable.with_frame(idx, LogRecord::decode))?;
            handler.redo(&rec)?;
            ops_redone += 1;
        }
    }

    // --- undo losers (deterministic order) ---
    let mut losers: Vec<(TxnId, Lsn)> = active.into_iter().collect();
    losers.sort_unstable();
    let mut loser_ids = Vec::with_capacity(losers.len());
    for (txn, last) in losers {
        let new_last = rollback_to(log, handler, txn, last, Lsn::NULL)?;
        log.append(txn, new_last, LogBody::Abort);
        loser_ids.push(txn);
    }

    log.force_all()?;
    Ok(RestartReport {
        losers: loser_ids,
        intents_redone,
        ops_redone,
        last_checkpoint: checkpoint,
        tail_truncated,
        max_txn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::StableLog;
    use crate::record::ExtKind;
    use dmx_types::sync::Mutex;
    use dmx_types::{DmxError, RelationId, SmTypeId};
    use std::sync::Arc;

    /// A handler that applies ops to a shadow counter set: op payload [n]
    /// means "+n was applied"; undo subtracts if currently applied
    /// (idempotence via presence check).
    #[derive(Default)]
    struct Shadow {
        applied: Mutex<Vec<u8>>,
        undone: Mutex<Vec<u8>>,
        redone: Mutex<Vec<u8>>,
        deferred: Mutex<Vec<Vec<u8>>>,
    }

    impl UndoHandler for Shadow {
        fn undo(&self, rec: &LogRecord) -> Result<()> {
            if let LogBody::ExtOp { payload, .. } = &rec.body {
                let mut applied = self.applied.lock();
                if let Some(pos) = applied.iter().position(|&b| b == payload[0]) {
                    applied.remove(pos);
                    self.undone.lock().push(payload[0]);
                }
            }
            Ok(())
        }
        fn redo(&self, rec: &LogRecord) -> Result<()> {
            // Idempotent: re-apply only if absent (mirrors page-LSN /
            // presence checks in real extensions).
            if let LogBody::ExtOp { payload, .. } = &rec.body {
                let mut applied = self.applied.lock();
                if !applied.contains(&payload[0]) {
                    applied.push(payload[0]);
                    self.redone.lock().push(payload[0]);
                }
            }
            Ok(())
        }
        fn redo_deferred(&self, rec: &LogRecord) -> Result<()> {
            if let LogBody::DeferredIntent { payload } = &rec.body {
                self.deferred.lock().push(payload.clone());
            }
            Ok(())
        }
    }

    fn op(n: u8) -> LogBody {
        LogBody::ExtOp {
            ext: ExtKind::Storage(SmTypeId(1)),
            relation: RelationId(1),
            op: 0,
            payload: vec![n],
        }
    }

    /// Appends `Begin` + ops, applying them to the shadow, returning
    /// (last_lsn, per-op lsns).
    fn run_ops(log: &LogManager, sh: &Shadow, txn: TxnId, ops: &[u8]) -> (Lsn, Vec<Lsn>) {
        let mut last = log.append(txn, Lsn::NULL, LogBody::Begin);
        let mut lsns = Vec::new();
        for &n in ops {
            sh.applied.lock().push(n);
            last = log.append(txn, last, op(n));
            lsns.push(last);
        }
        (last, lsns)
    }

    #[test]
    fn full_rollback_undoes_in_reverse() {
        let log = LogManager::open(StableLog::new());
        let sh = Shadow::default();
        let (last, _) = run_ops(&log, &sh, TxnId(1), &[1, 2, 3]);
        let new_last = rollback_to(&log, &sh, TxnId(1), last, Lsn::NULL).unwrap();
        assert!(sh.applied.lock().is_empty());
        assert_eq!(*sh.undone.lock(), vec![3, 2, 1], "reverse order");
        // three CLRs were appended and the chain now ends at the last CLR
        assert!(new_last > last);
        assert!(matches!(
            log.record(new_last).unwrap().body,
            LogBody::Clr { .. }
        ));
    }

    #[test]
    fn partial_rollback_stops_at_savepoint() {
        let log = LogManager::open(StableLog::new());
        let sh = Shadow::default();
        let txn = TxnId(1);
        let (mut last, _) = run_ops(&log, &sh, txn, &[1, 2]);
        let sp = log.append(txn, last, LogBody::Savepoint);
        last = sp;
        for n in [3u8, 4] {
            sh.applied.lock().push(n);
            last = log.append(txn, last, op(n));
        }
        rollback_to(&log, &sh, txn, last, sp).unwrap();
        assert_eq!(*sh.applied.lock(), vec![1, 2], "pre-savepoint ops survive");
        assert_eq!(*sh.undone.lock(), vec![4, 3]);
    }

    #[test]
    fn clr_prevents_double_undo() {
        let log = LogManager::open(StableLog::new());
        let sh = Shadow::default();
        let txn = TxnId(1);
        let (last, _) = run_ops(&log, &sh, txn, &[1, 2, 3]);
        let after_first = rollback_to(&log, &sh, txn, last, Lsn::NULL).unwrap();
        // Rolling back again from the new end of chain must be a no-op.
        rollback_to(&log, &sh, txn, after_first, Lsn::NULL).unwrap();
        assert_eq!(*sh.undone.lock(), vec![3, 2, 1], "each op undone once");
    }

    #[test]
    fn restart_undoes_losers_and_keeps_winners() {
        let stable = StableLog::new();
        let sh = Arc::new(Shadow::default());
        {
            let log = LogManager::open(stable.clone());
            // winner commits
            let (w_last, _) = run_ops(&log, &sh, TxnId(1), &[10, 11]);
            log.append(TxnId(1), w_last, LogBody::Commit);
            // loser never commits
            run_ops(&log, &sh, TxnId(2), &[20, 21]);
            log.force_all().unwrap();
        } // crash
        let log = LogManager::open(stable);
        let report = restart(&log, &*sh).unwrap();
        assert_eq!(report.losers, vec![TxnId(2)]);
        assert_eq!(*sh.applied.lock(), vec![10, 11]);
        assert_eq!(*sh.undone.lock(), vec![21, 20]);
    }

    #[test]
    fn restart_ignores_unforced_loser_tail() {
        // Ops that never reached the stable log simply don't exist at
        // restart; the undo pass only sees the durable prefix.
        let stable = StableLog::new();
        let sh = Arc::new(Shadow::default());
        {
            let log = LogManager::open(stable.clone());
            let (last, _) = run_ops(&log, &sh, TxnId(1), &[1]);
            log.force_all().unwrap();
            let _unforced = log.append(TxnId(1), last, op(2));
            sh.applied.lock().push(2);
        } // crash: op 2 never durable
        let log = LogManager::open(stable);
        restart(&log, &*sh).unwrap();
        assert_eq!(*sh.undone.lock(), vec![1], "only the durable op undone");
    }

    #[test]
    fn restart_completes_committed_deferred_intents_once() {
        let stable = StableLog::new();
        let sh = Arc::new(Shadow::default());
        {
            let log = LogManager::open(stable.clone());
            let t = TxnId(1);
            let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
            let l2 = log.append(
                t,
                l1,
                LogBody::DeferredIntent {
                    payload: b"drop file 7".to_vec(),
                },
            );
            log.append(t, l2, LogBody::Commit);
            // also: an intent of an uncommitted txn must NOT be redone
            let u1 = log.append(TxnId(2), Lsn::NULL, LogBody::Begin);
            log.append(
                TxnId(2),
                u1,
                LogBody::DeferredIntent {
                    payload: b"never".to_vec(),
                },
            );
            log.force_all().unwrap();
        }
        let log = LogManager::open(stable.clone());
        let report = restart(&log, &*sh).unwrap();
        assert_eq!(report.intents_redone, 1);
        assert_eq!(*sh.deferred.lock(), vec![b"drop file 7".to_vec()]);
        // a second crash+restart must not redo it again (DeferredDone logged)
        let log2 = LogManager::open(stable);
        let report2 = restart(&log2, &*sh).unwrap();
        assert_eq!(report2.intents_redone, 0);
        assert_eq!(sh.deferred.lock().len(), 1);
    }

    #[test]
    fn restart_on_empty_log_is_clean() {
        let log = LogManager::open(StableLog::new());
        let sh = Shadow::default();
        let report = restart(&log, &sh).unwrap();
        assert_eq!(report, RestartReport::default());
    }

    #[test]
    fn restart_truncates_corrupt_tail_then_recovers() {
        let stable = StableLog::new();
        let sh = Arc::new(Shadow::default());
        {
            let log = LogManager::open(stable.clone());
            let (w_last, _) = run_ops(&log, &sh, TxnId(1), &[10]);
            log.append(TxnId(1), w_last, LogBody::Commit);
            run_ops(&log, &sh, TxnId(2), &[20]);
            log.force_all().unwrap();
            // a torn frame at the very tail (garbage bytes, bad checksum)
            stable.append_frame(vec![0xDE, 0xAD, 0xBE]).unwrap();
        } // crash
        let log = LogManager::open(stable.clone());
        let report = restart(&log, &*sh).unwrap();
        assert_eq!(report.tail_truncated, 1);
        assert_eq!(report.losers, vec![TxnId(2)]);
        assert_eq!(report.max_txn, 2);
        assert_eq!(*sh.applied.lock(), vec![10], "winner survives");
        assert_eq!(*sh.undone.lock(), vec![20]);
    }

    #[test]
    fn restart_twice_is_idempotent() {
        // "Crash during restart recovery itself": the first recovery
        // completes and forces, then the system crashes again before doing
        // any new work. The second recovery must find a clean log and
        // change nothing.
        let stable = StableLog::new();
        let sh = Arc::new(Shadow::default());
        {
            let log = LogManager::open(stable.clone());
            let (w_last, _) = run_ops(&log, &sh, TxnId(1), &[10, 11]);
            log.append(TxnId(1), w_last, LogBody::Commit);
            run_ops(&log, &sh, TxnId(2), &[20, 21]);
            log.force_all().unwrap();
        } // crash
        {
            let log = LogManager::open(stable.clone());
            let r1 = restart(&log, &*sh).unwrap();
            assert_eq!(r1.losers, vec![TxnId(2)]);
        } // crash again, immediately after recovery
        let log = LogManager::open(stable.clone());
        let r2 = restart(&log, &*sh).unwrap();
        assert!(r2.losers.is_empty(), "loser already aborted durably");
        assert_eq!(r2.intents_redone, 0);
        assert_eq!(*sh.applied.lock(), vec![10, 11]);
        assert_eq!(*sh.undone.lock(), vec![21, 20], "no double undo");
    }

    #[test]
    fn crash_between_intent_redo_and_done_completes_on_next_restart() {
        // The hard window: a committed DeferredIntent's redo starts during
        // restart, but the system crashes before the DeferredDone becomes
        // durable. The next restart must re-drive the (idempotent) intent.
        struct FailOnce {
            inner: Shadow,
            tripped: Mutex<bool>,
        }
        impl UndoHandler for FailOnce {
            fn undo(&self, rec: &LogRecord) -> Result<()> {
                self.inner.undo(rec)
            }
            fn redo(&self, rec: &LogRecord) -> Result<()> {
                self.inner.redo(rec)
            }
            fn redo_deferred(&self, rec: &LogRecord) -> Result<()> {
                let mut tripped = self.tripped.lock();
                if !*tripped {
                    *tripped = true;
                    return Err(DmxError::Io("simulated crash during restart".into()));
                }
                self.inner.redo_deferred(rec)
            }
        }
        let stable = StableLog::new();
        let sh = FailOnce {
            inner: Shadow::default(),
            tripped: Mutex::new(false),
        };
        {
            let log = LogManager::open(stable.clone());
            let t = TxnId(1);
            let l1 = log.append(t, Lsn::NULL, LogBody::Begin);
            let l2 = log.append(
                t,
                l1,
                LogBody::DeferredIntent {
                    payload: b"drop file 9".to_vec(),
                },
            );
            log.append(t, l2, LogBody::Commit);
            log.force_all().unwrap();
        } // crash
        {
            let log = LogManager::open(stable.clone());
            assert!(restart(&log, &sh).is_err(), "first restart dies mid-redo");
        } // crash during recovery: no DeferredDone reached the stable log
        let log = LogManager::open(stable.clone());
        let report = restart(&log, &sh).unwrap();
        assert_eq!(report.intents_redone, 1);
        assert_eq!(*sh.inner.deferred.lock(), vec![b"drop file 9".to_vec()]);
        // and a third restart finds the DeferredDone and stays quiet
        let log = LogManager::open(stable);
        let report = restart(&log, &sh).unwrap();
        assert_eq!(report.intents_redone, 0);
        assert_eq!(sh.inner.deferred.lock().len(), 1);
    }

    #[test]
    fn restart_redoes_committed_ops_lost_from_volatile_state() {
        // Steal/no-force: a committed transaction's effects may not be on
        // disk at all. A fresh shadow (nothing applied) stands in for the
        // lost pages; restart's redo pass must reinstall the winner's ops
        // and leave the loser's alone.
        let stable = StableLog::new();
        {
            let log = LogManager::open(stable.clone());
            let sh = Shadow::default(); // applies are discarded with it
            let (w_last, _) = run_ops(&log, &sh, TxnId(1), &[10, 11]);
            log.append(TxnId(1), w_last, LogBody::Commit);
            run_ops(&log, &sh, TxnId(2), &[20]);
            log.force_all().unwrap();
        } // crash loses every applied effect
        let log = LogManager::open(stable);
        let fresh = Shadow::default();
        let report = restart(&log, &fresh).unwrap();
        assert_eq!(report.ops_redone, 2);
        assert_eq!(*fresh.applied.lock(), vec![10, 11], "winner reinstalled");
        assert_eq!(*fresh.redone.lock(), vec![10, 11], "forward log order");
        assert!(fresh.undone.lock().is_empty(), "loser op was never on disk");
    }

    #[test]
    fn redo_skips_ops_compensated_before_commit() {
        // A committed transaction that partially rolled back (savepoint)
        // contains CLRs; its compensated ops are NOT net-applied and must
        // not be replayed — the final undo chain jumps over them.
        let stable = StableLog::new();
        {
            let log = LogManager::open(stable.clone());
            let sh = Shadow::default();
            let txn = TxnId(1);
            let (mut last, _) = run_ops(&log, &sh, txn, &[1]);
            let sp = log.append(txn, last, LogBody::Savepoint);
            last = sp;
            for n in [2u8, 3] {
                sh.applied.lock().push(n);
                last = log.append(txn, last, op(n));
            }
            // roll back to the savepoint, then commit with op 4
            last = rollback_to(&log, &sh, txn, last, sp).unwrap();
            sh.applied.lock().push(4);
            last = log.append(txn, last, op(4));
            log.append(txn, last, LogBody::Commit);
            log.force_all().unwrap();
        } // crash loses all applied state
        let log = LogManager::open(stable);
        let fresh = Shadow::default();
        let report = restart(&log, &fresh).unwrap();
        assert_eq!(report.ops_redone, 2, "net ops only");
        assert_eq!(*fresh.applied.lock(), vec![1, 4], "2 and 3 compensated");
    }

    #[test]
    fn checkpoint_bounds_redo_scan() {
        let stable = StableLog::new();
        {
            let log = LogManager::open(stable.clone());
            let sh = Shadow::default();
            let (w_last, _) = run_ops(&log, &sh, TxnId(1), &[10]);
            log.append(TxnId(1), w_last, LogBody::Commit);
            // quiescent checkpoint: everything above is durably on disk
            log.append(TxnId(0), Lsn::NULL, LogBody::Checkpoint);
            let (w2, _) = run_ops(&log, &sh, TxnId(2), &[20]);
            log.append(TxnId(2), w2, LogBody::Commit);
            log.force_all().unwrap();
        } // crash
        let log = LogManager::open(stable);
        let fresh = Shadow::default();
        let report = restart(&log, &fresh).unwrap();
        assert_eq!(report.last_checkpoint, Lsn(4));
        assert_eq!(report.ops_redone, 1, "pre-checkpoint op not replayed");
        assert_eq!(*fresh.applied.lock(), vec![20]);
    }

    #[test]
    fn restart_after_crash_mid_rollback_resumes_via_clrs() {
        let stable = StableLog::new();
        let sh = Arc::new(Shadow::default());
        {
            let log = LogManager::open(stable.clone());
            let txn = TxnId(1);
            let (last, lsns) = run_ops(&log, &sh, txn, &[1, 2, 3]);
            // Simulate a crash after undoing only op 3: write one CLR by
            // hand, force, then "crash".
            sh.undo(&log.record(lsns[2]).unwrap()).unwrap();
            log.append(txn, last, LogBody::Clr { undo_next: lsns[1] });
            log.force_all().unwrap();
        }
        let log = LogManager::open(stable);
        restart(&log, &*sh).unwrap();
        assert_eq!(*sh.undone.lock(), vec![3, 2, 1], "3 not undone twice");
        assert!(sh.applied.lock().is_empty());
    }
}
