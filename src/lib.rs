//! # starburst-dmx
//!
//! A reproduction of **“A Data Management Extension Architecture”**
//! (Bruce Lindsay, John McPherson, Hamid Pirahesh; SIGMOD 1987) — the
//! Starburst design for making a relational DBMS's low-level data
//! management facilities *extensible*.
//!
//! The architecture defines two generic abstractions with generic
//! operation sets:
//!
//! * **storage methods** — alternative implementations of relation storage
//!   (see [`storage`]: heap, B-tree-organized, temporary in-memory,
//!   read-only publishing, foreign-database gateway), and
//! * **attachments** — access paths, integrity constraints and triggers
//!   procedurally attached to relation instances (see [`attach`]: B-tree /
//!   hash / R-tree indexes, join index, CHECK and referential integrity
//!   constraints, triggers, maintained aggregates),
//!
//! coordinated by **common services**: log-driven recovery and partial
//! rollback ([`wal`]), lock-based concurrency control ([`lock`]),
//! transaction events and deferred actions ([`txn`]), and a filter
//! predicate evaluator that runs against buffer-resident records
//! ([`expr`]). The extension machinery itself — procedure-vector
//! registries, the extensible relation descriptor, the modification
//! dispatcher with attachment veto and partial rollback, and the
//! [`core::Database`] facade — lives in [`core`]. A cost-based query
//! layer with bound-plan caching and invalidation lives in [`query`].
//!
//! ## Quickstart
//!
//! ```
//! use starburst_dmx::prelude::*;
//!
//! let db = starburst_dmx::open_default().unwrap();
//! db.execute_sql(
//!     "CREATE TABLE emp (id INT NOT NULL, name STRING, salary FLOAT) USING heap",
//! )
//! .unwrap();
//! db.execute_sql("CREATE INDEX emp_id ON emp USING btree (id) WITH (unique=true)")
//!     .unwrap();
//! db.execute_sql("INSERT INTO emp VALUES (1, 'ann', 100.0)").unwrap();
//! let rows = db.query_sql("SELECT name FROM emp WHERE id = 1").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

use std::sync::Arc;

pub use dmx_attach as attach;
pub use dmx_btree as btree;
pub use dmx_core as core;
pub use dmx_expr as expr;
pub use dmx_lock as lock;
pub use dmx_page as page;
pub use dmx_query as query;
pub use dmx_storage as storage;
pub use dmx_txn as txn;
pub use dmx_types as types;
pub use dmx_wal as wal;

use dmx_core::{Database, DatabaseConfig, DatabaseEnv, ExtensionRegistry};
use dmx_types::Result;

/// Builds an extension registry with every built-in storage method and
/// attachment type installed "at the factory". The temporary storage
/// method registers first and receives internal identifier 1, as in the
/// paper.
pub fn default_registry() -> Result<Arc<ExtensionRegistry>> {
    let reg = ExtensionRegistry::new();
    dmx_storage::register_builtin_storage(&reg)?;
    dmx_attach::register_builtin_attachments(&reg)?;
    Ok(reg)
}

/// Opens a fresh in-memory database with all built-in extensions.
pub fn open_default() -> Result<Arc<Database>> {
    Database::open_fresh(default_registry()?)
}

/// Opens (or crash-reopens) a database over an existing environment with
/// all built-in extensions.
pub fn open_env(env: DatabaseEnv, config: DatabaseConfig) -> Result<Arc<Database>> {
    Database::open(env, config, default_registry()?)
}

/// The most commonly used items, re-exported for examples and downstream
/// users.
pub mod prelude {
    pub use dmx_core::{AccessPath, AccessQuery, Database, DatabaseConfig, DatabaseEnv, SpatialOp};
    pub use dmx_query::{QueryResult, Session, SqlExt};
    pub use dmx_types::{
        AttrList, ColumnDef, DataType, DmxError, FaultInjector, FaultKind, FaultPlan, Record,
        RecordKey, Rect, RelationId, Result, Schema, Value,
    };
}
