//! An interactive SQL shell over the extensible data manager.
//!
//! Run with: `cargo run --example repl`
//!
//! Try:
//! ```sql
//! CREATE TABLE emp (id INT NOT NULL, name STRING, salary FLOAT);
//! CREATE UNIQUE INDEX emp_pk ON emp (id);
//! INSERT INTO emp VALUES (1, 'ann', 1200.0), (2, 'bob', 900.0);
//! SELECT * FROM emp WHERE id = 1;
//! EXPLAIN SELECT * FROM emp WHERE id = 1;
//! BEGIN; DELETE FROM emp; ROLLBACK;
//! SELECT COUNT(*) FROM emp;
//! ```

use std::io::{BufRead, Write};

use starburst_dmx::prelude::*;

fn main() -> Result<()> {
    let db = starburst_dmx::open_default()?;
    let sess = Session::new(db);
    println!("starburst-dmx SQL shell — end statements with ';', \\q to quit");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("dmx> ");
        } else {
            print!("  -> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed == "\\q" || trimmed.eq_ignore_ascii_case("quit") {
            break;
        }
        buffer.push_str(&line);
        // execute every complete (semicolon-terminated) statement
        while let Some(pos) = buffer.find(';') {
            let stmt: String = buffer.drain(..=pos).collect();
            let stmt = stmt.trim_end_matches(';').trim().to_string();
            if stmt.is_empty() {
                continue;
            }
            match sess.execute(&stmt) {
                Ok(result) => print_result(&result),
                Err(e) => report_error(&e),
            }
        }
        if buffer.trim().is_empty() {
            buffer.clear();
        }
    }
    println!("bye");
    Ok(())
}

/// Errors are part of the interface: besides the message, tell the user
/// what the sensible next action is for the recoverable classes.
fn report_error(e: &DmxError) {
    println!("error: {e}");
    match e {
        DmxError::RelationQuarantined { .. } => {
            println!("hint: this relation's pages failed checksum verification; other relations remain available");
        }
        DmxError::IoTransient(_) => {
            println!("hint: the fault was transient — re-run the statement");
        }
        DmxError::Deadlock { .. } => {
            println!("hint: the statement's transaction was chosen as deadlock victim and rolled back — re-run it");
        }
        _ => {}
    }
}

fn print_result(r: &QueryResult) {
    if r.columns.is_empty() {
        println!("ok");
        return;
    }
    println!("{}", r.columns.join(" | "));
    println!("{}", "-".repeat(r.columns.join(" | ").len().max(4)));
    for row in &r.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    println!("({} rows)", r.rows.len());
}
