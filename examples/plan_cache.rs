//! Bound plans, dependency tracking, and automatic re-translation.
//!
//! The paper: "it is important to retain the translations of queries into
//! query execution plans … A uniform mechanism for recording the
//! dependencies of execution plans on the relations they use allows the
//! system to invalidate any plans which depend upon relations or access
//! paths that have been deleted from the system. Invalidated execution
//! plans are automatically re-translated, by the common system, the next
//! time the query is invoked."
//!
//! Run with: `cargo run --example plan_cache`

use std::sync::atomic::Ordering;

use starburst_dmx::prelude::*;
use starburst_dmx::query::PlanCache;

fn main() -> Result<()> {
    let db = starburst_dmx::open_default()?;
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL)")?;
    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")?;
    for i in 0..5000 {
        db.execute_sql(&format!("INSERT INTO emp VALUES ({i}, 'emp{i}')"))?;
    }

    let cache = db.query_state::<PlanCache, _>(PlanCache::default);
    let q = "SELECT name FROM emp WHERE id = 4242";

    // first execution compiles and binds the plan …
    println!("plan on first execution:");
    for row in db.query_sql(&format!("EXPLAIN {q}"))? {
        println!("  {}", row[0].as_str()?);
    }
    db.query_sql(q)?;
    // … subsequent executions reuse it without touching the catalog
    for _ in 0..10 {
        db.query_sql(q)?;
    }
    println!(
        "\ncache after 11 executions: hits={}, misses={}, retranslations={}",
        cache.stats.hits.load(Ordering::Relaxed),
        cache.stats.misses.load(Ordering::Relaxed),
        cache.stats.retranslations.load(Ordering::Relaxed),
    );

    // Dropping the index invalidates every dependent plan …
    db.execute_sql("DROP INDEX emp_pk ON emp")?;
    println!("\ndropped emp_pk; next invocation re-translates automatically:");
    let rows = db.query_sql(q)?; // no error: re-translated against the scan
    println!("  result (via storage-method scan): {:?}", rows[0]);
    for row in db.query_sql(&format!("EXPLAIN {q}"))? {
        println!("  {}", row[0].as_str()?);
    }
    println!(
        "\ncache afterwards: hits={}, misses={}, retranslations={}",
        cache.stats.hits.load(Ordering::Relaxed),
        cache.stats.misses.load(Ordering::Relaxed),
        cache.stats.retranslations.load(Ordering::Relaxed),
    );
    Ok(())
}
