//! Alternative storage methods: publishing, scratch space, and a foreign
//! database — three relations, three storage methods, one uniform
//! relation abstraction.
//!
//! The paper motivates "main memory data storage methods for selected
//! high-traffic relations, and special facilities to support (read-only)
//! optical disk database publishing applications", plus a storage method
//! that "support[s] access to a foreign database by simulating relation
//! accesses via (remote) accesses".
//!
//! Run with: `cargo run --example publishing`

// Examples are exempt from the runtime panic discipline: a failure in a
// walkthrough should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::storage::ForeignStorage;

fn main() -> Result<()> {
    // Register extensions "at the factory"; keep a handle to the foreign
    // gateway so we can stand up a simulated remote server.
    let reg = starburst_dmx::core::ExtensionRegistry::new();
    let foreign = Arc::new(ForeignStorage::default());
    let mars = foreign.register_server("mars");
    reg.register_storage_method(Arc::new(starburst_dmx::storage::MemoryStorage::default()))?;
    reg.register_storage_method(Arc::new(starburst_dmx::storage::HeapStorage))?;
    reg.register_storage_method(Arc::new(starburst_dmx::storage::BTreeStorage))?;
    reg.register_storage_method(Arc::new(starburst_dmx::storage::ReadOnlyStorage))?;
    reg.register_storage_method(foreign)?;
    starburst_dmx::attach::register_builtin_attachments(&reg)?;
    let db = Database::open_fresh(reg)?;

    // 1. A published (write-once) reference dataset.
    db.execute_sql("CREATE TABLE atlas (code INT NOT NULL, place STRING NOT NULL) USING readonly")?;
    for (code, place) in [(1, "Almaden"), (2, "Kyoto"), (3, "Boston"), (4, "Austin")] {
        db.execute_sql(&format!("INSERT INTO atlas VALUES ({code}, '{place}')"))?;
    }
    println!("published the atlas (write-once storage method)");
    let err = db.execute_sql("DELETE FROM atlas WHERE code = 1");
    println!("  attempt to delete from it: {}", err.unwrap_err());

    // 2. A temporary high-traffic relation (the storage method with
    //    internal identifier 1, as in the paper).
    db.execute_sql("CREATE TABLE hot_counts (code INT NOT NULL, hits INT) USING memory")?;
    for i in 0..1000 {
        db.execute_sql(&format!("INSERT INTO hot_counts VALUES ({}, 1)", i % 4 + 1))?;
    }
    println!(
        "\ntemporary relation absorbed 1000 inserts (memory storage method, id {})",
        db.registry().storage_id_by_name("memory")?
    );

    // 3. A relation that actually lives on the foreign server "mars".
    db.execute_sql(
        "CREATE TABLE mars_inventory (code INT NOT NULL, qty INT) USING foreign WITH (server = mars)",
    )?;
    let before = mars.round_trips();
    for code in 1..=4 {
        db.execute_sql(&format!(
            "INSERT INTO mars_inventory VALUES ({code}, {})",
            code * 10
        ))?;
    }
    println!(
        "\nforeign relation loaded; {} simulated round trips to '{}'",
        mars.round_trips() - before,
        mars.name()
    );

    // One query spanning all three storage methods: the planner and
    // executor see only the generic relation abstraction.
    let rows = db.query_sql(
        "SELECT a.place, h.hits, m.qty \
         FROM atlas a, hot_counts h, mars_inventory m \
         WHERE h.code = a.code AND m.code = a.code AND a.code = 2 LIMIT 1",
    )?;
    println!("\ncross-storage-method join: {:?}", rows[0]);

    // The uniform abstraction also means uniform aggregation:
    let rows = db.query_sql(
        "SELECT a.place, COUNT(*) FROM atlas a, hot_counts h WHERE h.code = a.code \
         GROUP BY a.place ORDER BY 1",
    )?;
    println!("\nhits per published place:");
    for r in &rows {
        println!("  {}: {}", r[0], r[1]);
    }
    println!("\ntotal round trips to mars so far: {}", mars.round_trips());
    Ok(())
}
