//! Referential integrity with cascading deletes.
//!
//! The paper: "the referential integrity attachment to a 'parent'
//! relation would perform record delete operations on the 'child'
//! relation when a 'parent' record is deleted. If the 'child' relation
//! also has a referential integrity attachment, it would perform record
//! delete operations on its 'child' relation. Thus, cascaded deletes can
//! be supported."
//!
//! We build a dept → employee → assignment chain and delete one
//! department; the cascade flows through two levels, every step running
//! the full two-step modification protocol (so indexes on the cascaded
//! relations stay consistent too).
//!
//! Run with: `cargo run --example referential`

// Examples are exempt from the runtime panic discipline: a failure in a
// walkthrough should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use starburst_dmx::prelude::*;

fn counts(db: &std::sync::Arc<Database>) -> Result<(i64, i64, i64)> {
    let d = db.query_sql("SELECT COUNT(*) FROM dept")?[0][0].as_int()?;
    let e = db.query_sql("SELECT COUNT(*) FROM employee")?[0][0].as_int()?;
    let a = db.query_sql("SELECT COUNT(*) FROM assignment")?[0][0].as_int()?;
    Ok((d, e, a))
}

fn main() -> Result<()> {
    let db = starburst_dmx::open_default()?;

    db.execute_sql("CREATE TABLE dept (id INT NOT NULL, name STRING NOT NULL)")?;
    db.execute_sql("CREATE TABLE employee (id INT NOT NULL, name STRING NOT NULL, dept INT)")?;
    db.execute_sql("CREATE TABLE assignment (id INT NOT NULL, emp INT, project STRING)")?;
    // indexes on the children prove cascades maintain access paths too
    db.execute_sql("CREATE INDEX emp_id ON employee USING btree (id)")?;
    db.execute_sql("CREATE INDEX asg_emp ON assignment USING hash (emp)")?;

    // dept ←(cascade)– employee: instances on both relations share a link
    db.execute_sql(
        "CREATE ATTACHMENT fk_emp_dept ON employee USING refint \
         WITH (role=child, fields=dept, other=dept, other_fields=id)",
    )?;
    db.execute_sql(
        "CREATE ATTACHMENT fk_emp_dept_p ON dept USING refint \
         WITH (role=parent, fields=id, other=employee, other_fields=dept, on_delete=cascade)",
    )?;
    // employee ←(cascade)– assignment
    db.execute_sql(
        "CREATE ATTACHMENT fk_asg_emp ON assignment USING refint \
         WITH (role=child, fields=emp, other=employee, other_fields=id)",
    )?;
    db.execute_sql(
        "CREATE ATTACHMENT fk_asg_emp_p ON employee USING refint \
         WITH (role=parent, fields=id, other=assignment, other_fields=emp, on_delete=cascade)",
    )?;

    for d in 0..3 {
        db.execute_sql(&format!("INSERT INTO dept VALUES ({d}, 'dept{d}')"))?;
    }
    for e in 0..30 {
        db.execute_sql(&format!(
            "INSERT INTO employee VALUES ({e}, 'emp{e}', {})",
            e % 3
        ))?;
        for p in 0..2 {
            db.execute_sql(&format!(
                "INSERT INTO assignment VALUES ({}, {e}, 'proj{p}')",
                e * 10 + p
            ))?;
        }
    }
    println!(
        "before: (depts, employees, assignments) = {:?}",
        counts(&db)?
    );

    // insertion against a missing parent is vetoed
    let err = db.execute_sql("INSERT INTO employee VALUES (99, 'lost', 42)");
    println!("\ninsert with unknown dept: {}", err.unwrap_err());

    // the cascade: one DELETE statement, two levels of fan-out
    db.execute_sql("DELETE FROM dept WHERE id = 1")?;
    println!("\nafter DELETE dept 1: {:?}", counts(&db)?);
    println!("  (10 employees and their 20 assignments cascaded away)");

    // cascaded deletes are transactional like everything else: a rollback
    // resurrects the whole subtree
    let sess = Session::new(db.clone());
    sess.execute("BEGIN")?;
    sess.execute("DELETE FROM dept WHERE id = 0")?;
    println!("\nin-txn after DELETE dept 0: {:?}", counts(&db)?);
    sess.execute("ROLLBACK")?;
    println!("after ROLLBACK:            {:?}", counts(&db)?);
    Ok(())
}
