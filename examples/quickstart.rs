//! Quickstart: the paper's Figure 1 configuration, end to end.
//!
//! The EMPLOYEE relation uses the **heap storage method** and carries
//! instances of the **B-tree index** and **intra-record consistency
//! constraint** attachment types. We create it through the extended DDL
//! (`… USING <extension> WITH (attr = value, …)`), load it, query it
//! through the index, and watch a constraint veto get rolled back by the
//! common recovery facility.
//!
//! Run with: `cargo run --example quickstart`

use starburst_dmx::prelude::*;

fn main() -> Result<()> {
    let db = starburst_dmx::open_default()?;

    // --- data definition with extension attribute lists --------------
    db.execute_sql(
        "CREATE TABLE employee (
            id     INT NOT NULL,
            name   STRING NOT NULL,
            dept   INT,
            salary FLOAT
         ) USING heap",
    )?;
    db.execute_sql("CREATE UNIQUE INDEX emp_id ON employee USING btree (id)")?;
    db.execute_sql("CREATE INDEX emp_dept ON employee USING btree (dept)")?;
    db.execute_sql("CREATE CONSTRAINT salary_positive ON employee CHECK (salary > 0)")?;

    println!("EMPLOYEE relation created: heap storage method,");
    let rd = db.catalog().get_by_name("employee")?;
    for (att, insts) in rd.attached_types() {
        for inst in insts {
            println!("  attachment type {att}: instance '{}'", inst.name);
        }
    }

    // --- loading ------------------------------------------------------
    for i in 0..1000 {
        db.execute_sql(&format!(
            "INSERT INTO employee VALUES ({i}, 'emp{i}', {}, {:.1})",
            i % 10,
            1000.0 + (i % 50) as f64 * 100.0
        ))?;
    }
    println!("\nloaded 1000 employees");

    // --- querying through the chosen access path ----------------------
    let plan = db.query_sql("EXPLAIN SELECT name, salary FROM employee WHERE id = 321")?;
    println!("\nplan for `id = 321`:");
    for row in &plan {
        if let Some(step) = row.first() {
            println!("  {}", step.as_str()?);
        }
    }
    let rows = db.query_sql("SELECT name, salary FROM employee WHERE id = 321")?;
    let hit = rows
        .first()
        .ok_or_else(|| DmxError::NotFound("employee 321".into()))?;
    println!("  -> {hit:?}");

    // --- the veto path -------------------------------------------------
    // a duplicate id (unique index) and a non-positive salary (check
    // constraint) are both vetoed by their attachments; the common
    // recovery log undoes the already-applied parts of each modification
    let dup = db.execute_sql("INSERT INTO employee VALUES (321, 'imposter', 1, 500.0)");
    println!("\nduplicate id:    {}", expect_veto(dup)?);
    let neg = db.execute_sql("INSERT INTO employee VALUES (9999, 'broke', 1, -5.0)");
    println!("negative salary: {}", expect_veto(neg)?);

    let n = db.query_sql("SELECT COUNT(*) FROM employee")?;
    let count = n
        .first()
        .and_then(|r| r.first())
        .ok_or_else(|| DmxError::Internal("COUNT(*) returned no row".into()))?;
    println!("\nemployee count after vetoes: {count} (still 1000)");

    // --- aggregate over an index-ordered scan --------------------------
    let rows = db.query_sql(
        "SELECT dept, COUNT(*), AVG(salary) FROM employee GROUP BY dept ORDER BY dept",
    )?;
    println!("\nper-department headcount / average salary:");
    for r in &rows {
        if let [dept, n, avg] = r.as_slice() {
            println!("  dept {dept}: {n} employees, avg {avg}");
        }
    }
    Ok(())
}

/// The veto paths are the demo: an attachment rejecting a modification
/// must surface as an error. If one unexpectedly succeeds, the example
/// itself is broken — report that instead of panicking.
fn expect_veto<T>(r: Result<T>) -> Result<DmxError> {
    match r {
        Err(e) => Ok(e),
        Ok(_) => Err(DmxError::Internal(
            "expected the attachment to veto this insert".into(),
        )),
    }
}
