//! Spatial databases via the R-tree access path.
//!
//! The paper's opening example: "spatial database applications can make
//! use of an R-tree access path [Guttman 84] to efficiently compute
//! certain spatial predicates." We index land parcels, run ENCLOSES /
//! window / overlap queries, and show the R-tree's cost estimate
//! recognizing the ENCLOSES predicate ("and report a low cost").
//!
//! Run with: `cargo run --example spatial`

use starburst_dmx::prelude::*;

fn main() -> Result<()> {
    let db = starburst_dmx::open_default()?;

    db.execute_sql("CREATE TABLE parcels (id INT NOT NULL, owner STRING NOT NULL, area RECT)")?;
    db.execute_sql("CREATE INDEX parcels_area ON parcels USING rtree (area)")?;

    // a 50x40 grid of 2000 parcels, each 80x80 with a 20-unit road gap
    let mut n = 0;
    for gy in 0..40 {
        for gx in 0..50 {
            let (x, y) = (gx as f64 * 100.0, gy as f64 * 100.0);
            db.execute_sql(&format!(
                "INSERT INTO parcels VALUES ({n}, 'owner{}', RECT({x}, {y}, {}, {}))",
                n % 7,
                x + 80.0,
                y + 80.0
            ))?;
            n += 1;
        }
    }
    println!("registered {n} parcels");

    // Which parcel encloses the clubhouse at (1234, 2345)-(1236, 2347)?
    let q = "SELECT id, owner FROM parcels WHERE area ENCLOSES RECT(1234, 2345, 1236, 2347)";
    println!("\nplan for the ENCLOSES query:");
    for row in db.query_sql(&format!("EXPLAIN {q}"))? {
        println!("  {}", row[0].as_str()?);
    }
    for row in db.query_sql(q)? {
        println!("  parcel {} owned by {}", row[0], row[1]);
    }

    // Window query: everything inside a survey window.
    let rows =
        db.query_sql("SELECT COUNT(*) FROM parcels WHERE RECT(0, 0, 480, 480) ENCLOSES area")?;
    println!("\nparcels fully inside the survey window: {}", rows[0][0]);

    // Overlap: which parcels does a proposed pipeline cross?
    let rows = db.query_sql(
        "SELECT id FROM parcels WHERE area INTERSECTS RECT(0, 150, 500, 170) ORDER BY id",
    )?;
    print!("\npipeline crosses parcels:");
    for r in &rows {
        print!(" {}", r[0]);
    }
    println!();

    // Updates keep the spatial index current (attachment maintenance).
    db.execute_sql("UPDATE parcels SET area = RECT(0, 150, 80, 230) WHERE id = 0")?;
    let rows =
        db.query_sql("SELECT COUNT(*) FROM parcels WHERE area INTERSECTS RECT(0, 150, 500, 170)")?;
    println!(
        "after moving parcel 0 onto the route: {} crossings",
        rows[0][0]
    );
    Ok(())
}
